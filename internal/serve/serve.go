// Package serve is the multi-tenant DP query service: an HTTP+JSON layer
// that hosts many isolated tenants, each owning a dpsql database and one
// privacy ledger, and executes estimator releases and SQL queries
// concurrently through a bounded worker pool.
//
// This is the system shape the paper's universal estimators need to be
// useful at scale: many statistics served off one dataset under one
// accounted privacy budget, with ingestion streaming in while queries
// run. Because the estimators need no range, scale, or family hints, the
// service exposes them with no tuning knobs beyond (statistic, ε) — a
// tenant cannot misconfigure a clipping bound, because there is none.
//
// Budget model: a tenant is created with a nominal budget and a pluggable
// composition backend (dp.Ledger) that decides how releases compose:
//
//   - "pure" (default): basic composition of pure ε (Lemma 2.2) — k
//     releases at ε₀ cost k·ε₀.
//   - "zcdp": zCDP accounting at a (ε, δ) target — each pure release
//     costs only ε₀²/2 in ρ (Bun & Steinke 2016), so sustained
//     many-small-releases traffic lasts quadratically longer; natively
//     Gaussian releases are charged their ρ directly.
//   - "rdp": Rényi accounting over a grid of orders α ("orders" in the
//     create request; default α ∈ [1.25, 64]) at the same (ε, δ) target.
//     Every release is priced as its full RDP curve — pure releases via
//     the tight pure-DP→RDP bound (strictly below zcdp's ε²/2 line),
//     Gaussian releases via ρα — the per-order vectors compose by
//     addition, and the budget is enforced on the optimal (ε, δ)
//     conversion: on a grid bracketing the optimal order (the default
//     suffices for ε ≳ 0.5 at δ = 1e-6; dp.RDPOrdersFor computes one
//     for any target) rdp is never looser than zcdp, and strictly
//     tighter on mixed Laplace+Gaussian traffic. Tenant status reports
//     the native per-order spend alongside the converted view.
//   - any backend may be wrapped with a renewable window
//     (window_seconds): the budget refills to full on a fixed wall-clock
//     cadence, turning a lifetime total into a rate.
//
// docs/ACCOUNTING.md is the operator's guide to choosing a backend (and
// an rdp order grid); docs/API.md documents every endpoint's wire format.
//
// Every release — SQL query or direct estimator call — names its own cost
// and is atomically deducted from the tenant's single ledger before the
// mechanism runs; a request that would overdraw is refused with HTTP 429
// and releases nothing. Failed releases after deduction stay charged
// (refunding on data-dependent failures would leak through the budget
// itself). Schema DDL and row ingestion touch stored data only and are
// free, as are cache replays of byte-identical repeated releases
// (post-processing of an already-released answer).
//
// Durability (Options.DataDir, internal/store): a budget is a *lifetime*
// total, so an in-memory ledger that refills on restart voids the
// guarantee — crash the process, get a fresh budget. With a data
// directory every tenant carries a write-ahead log plus compacted
// snapshots. What is logged when:
//
//   - tenant creation and table DDL: logged and fsynced before the
//     request is acknowledged;
//   - every ledger deduction: logged and fsynced after the in-memory
//     check-and-deduct succeeds and before the mechanism runs — no
//     answer ever leaves the process on a deduction a crash could
//     forget. Concurrent deductions share the fsync through the WAL
//     group committer (Options.GroupCommit): releases park on a commit
//     barrier and one batch record — one fsync — acks all of them,
//     their audit records riding the same barrier, so durable
//     throughput scales with concurrency instead of being bounded by
//     per-release fsync latency;
//   - row ingestion batches: logged without fsync (hardened by the next
//     deduction's fsync, a snapshot, or Close).
//
// The invariant, "spend is never under-counted": after any crash,
// recovered spend >= the spend of every answered release. The converse
// loss is tolerated asymmetrically — a torn WAL tail may drop trailing
// data rows (utility) but replay never drops a recorded deduction
// (privacy), and replaying the same log twice converges on the same
// state. Close compacts a final snapshot; kill -9 merely means the next
// Open replays a longer WAL tail.
//
// Sharding ("shards" at tenant creation, Options.DefaultShards): a
// tenant's tables are hash-partitioned by user id into N shards, each
// with its own lock, so concurrent ingest batches stripe instead of
// serializing, and every release scan fans out over the shards through
// the worker pool (a work-stealing fan that can never deadlock the pool
// — see pool.fan). Three invariants make the topology invisible to
// everything but the clock:
//
//   - merge-as-post-processing: per-shard scans produce partial per-user
//     aggregates that combine by addition into exactly the collapse a
//     monolithic scan yields, BEFORE the mechanism runs — because users
//     are hash-routed, a user's rows colocate in arrival order and the
//     merged collapse is bit-for-bit the unsharded one;
//   - single deduction: the merge happens under the tenant's one ledger,
//     so a release charges exactly once regardless of N, with unchanged
//     noise semantics (a sharded tenant and an unsharded twin with the
//     same seed release identical answers and identical spend);
//   - durable topology: WAL row records carry a shard tag and snapshots
//     carry per-row placement, so recovery rebuilds the same partitioning;
//     untagged (pre-shard) records replay into shard 0, and a pre-shard
//     data directory boots as a single-shard tenant with spend preserved.
//
// Endpoints (all JSON; see handlers.go for wire types):
//
//	POST /v1/tenants                          create a tenant (budget + accounting backend)
//	GET  /v1/tenants                          list tenant ids
//	GET  /v1/tenants/{t}                      budget (native units + (ε, δ) view) + counters
//	POST /v1/tenants/{t}/tables               create a table (schema + user column)
//	POST /v1/tenants/{t}/tables/{name}/rows   append rows (streaming ingestion)
//	POST /v1/tenants/{t}/query                dpsql SELECT under user-level DP
//	POST /v1/tenants/{t}/estimate             one estimator release on a column (scalar or grouped)
//	POST /v1/tenants/{t}/histogram            count-by-key histogram as ONE parallel-composed release
//	GET  /v1/tenants/{t}/audit                the DP audit log: one record per charged release
//	GET  /v1/stats                            server-wide counters (incl. cache hits/misses)
//	GET  /v1/healthz                          liveness
//	GET  /metrics                             Prometheus text exposition (internal/obs)
//
// Observability (docs/OBSERVABILITY.md): every release carries a release
// ID (echoed in the X-Release-Id response header) through a per-stage
// trace — queue wait, cache lookup, shard scan+merge, noise sampling,
// ledger deduction, group-commit wait, WAL fsync, audit append — feeding
// per-stage latency
// histograms on /metrics; per-tenant budget-odometer gauges report
// spend, burn rate, and projected time to exhaustion; and releases
// slower than Options.SlowRelease log one structured line with the full
// span breakdown.
package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dp"
	"repro/internal/dpsql"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/xrand"
)

// defaultDelta is the δ a zcdp tenant gets when the request leaves it
// unset.
const defaultDelta = 1e-6

// Options configures a Server.
type Options struct {
	// Workers bounds the number of releases executing concurrently
	// (estimators are CPU-bound; unbounded concurrency only adds
	// scheduling overhead). 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of queued-but-not-running releases
	// before the server sheds load with 503. 0 means 8×Workers.
	QueueDepth int
	// Seed makes the server's noise deterministic — tests and benchmarks
	// only; production must leave it 0 (OS entropy) or the privacy
	// guarantee is void.
	Seed uint64
	// DataDir enables durable tenant state (internal/store): every tenant
	// gets a write-ahead log plus compacted snapshots under this
	// directory, deductions are recorded durably before any answer leaves
	// the process, and Open replays the directory back into the tenant
	// registry on boot — so budget spend survives restarts instead of
	// silently refilling. Empty means in-memory only (tests, ephemeral
	// experiments).
	DataDir string
	// SnapshotEvery bounds WAL growth for durable servers: once a
	// tenant's log holds this many records past its snapshot, the
	// tenant's state is compacted after the next ingest or release.
	// 0 means 1024.
	SnapshotEvery int
	// DefaultShards is the table shard count tenants get when their
	// creation request does not name one ("shards"): each tenant table is
	// hash-partitioned by user id into this many shards, striping ingest
	// across per-shard locks and fanning release scans over the worker
	// pool. 0 means 1 (monolithic tables, the pre-shard behavior).
	DefaultShards int
	// SlowRelease is the threshold past which a release logs one
	// structured line with its release ID and full per-stage span
	// breakdown. 0 means 250ms; negative disables the log.
	SlowRelease time.Duration
	// GroupCommit tunes the WAL group committer on durable servers:
	// concurrent releases park on a shared commit barrier and one fsync
	// acks the whole batch (deductions + audit records together). The
	// zero value enables group commit with natural adaptive batching —
	// a lone release commits immediately, releases arriving during an
	// in-flight fsync form the next batch. Set Disable to restore one
	// fsync per deduction plus one per audit record. Ignored without
	// DataDir.
	GroupCommit store.GroupCommitOptions
	// TraceRing sizes the flight recorder: the last TraceRing completed
	// release traces are retained (plus up to TraceRing slow/errored/shed
	// traces, tail-sampled so healthy floods never evict them) and served
	// at GET /v1/traces. 0 means 256; negative disables retention.
	TraceRing int
	// Exemplars opts the /metrics rendering into OpenMetrics exemplar
	// syntax: each release/stage histogram bucket carries the most recent
	// release ID that landed in it, linking a dashboard bucket straight
	// to GET /v1/traces/{id}. Off by default because the suffix is not
	// part of the Prometheus 0.0.4 text format some scrapers pin.
	Exemplars bool
	// SLOLatency arms the self-watchdog: when the release-latency p99
	// over a window exceeds this threshold for SLOWindows consecutive
	// windows, the watchdog captures one incident bundle (CPU, heap, and
	// goroutine profiles, a /metrics scrape, the retained traces) into
	// IncidentDir. 0 disables the watchdog.
	SLOLatency time.Duration
	// SLOWindow is the latency-aggregation window (0 means 10s).
	SLOWindow time.Duration
	// SLOWindows is the number of consecutive breaching windows that
	// trigger a capture (0 means 2).
	SLOWindows int
	// IncidentDir receives incident bundles (one timestamped directory
	// per capture). Required for the watchdog to arm; relative paths are
	// relative to the process working directory.
	IncidentDir string
	// IncidentCooldown is the minimum gap between captures, bounding the
	// profiling cost of a sustained breach (0 means 10min).
	IncidentCooldown time.Duration
}

// maxTenantShards bounds a tenant's configured shard count; past this the
// per-shard bookkeeping costs more than lock striping wins.
const maxTenantShards = dpsql.MaxShards

// Server hosts tenants and serves the HTTP API. Create with New; it is
// safe for concurrent use.
type Server struct {
	mux  *http.ServeMux
	pool *pool

	// st is the durability engine (nil for in-memory servers); snapEvery
	// is the per-tenant WAL compaction threshold; defShards is the shard
	// count tenants default to.
	st        *store.Store
	snapEvery int
	defShards int

	mu       sync.RWMutex
	tenants  map[string]*Tenant
	creating map[string]struct{} // ids reserved by in-flight creations

	// rng is the root generator; per-release generators are split off
	// under rngMu because xrand.RNG itself is single-threaded.
	rngMu sync.Mutex
	rng   *xrand.RNG

	// noise banks bulk draws for fixed-shape mechanisms (the count
	// stat), so a commit batch of same-shape releases shares one
	// vectorized sampling pass.
	noise *noiseBank

	start time.Time

	// metrics is the single source of truth for server-wide counters:
	// /v1/stats and /metrics both read the same obs instruments (the
	// old ad-hoc atomic.Int64 fields lived here). slowRel is the
	// slow-release log threshold (0 = disabled).
	metrics *metricsSet
	slowRel time.Duration

	// recorder is the flight recorder finished releases land in (nil
	// when retention is disabled); watchdog is the SLO breach monitor
	// (nil when unarmed).
	recorder *obs.Recorder
	watchdog *watchdog
}

// Tenant is one isolated customer: a database, one privacy ledger (the
// composition backend) shared by every release path, a response cache,
// and counters.
type Tenant struct {
	id         string
	db         *dpsql.DB
	led        dp.Ledger // the real composition backend (status, snapshots)
	accounting string    // "pure" or "zcdp"
	windowSecs float64   // > 0 when the ledger refills on a window
	shards     int       // table shard count (>= 1; 1 for pre-shard tenants)
	cache      *respCache
	created    time.Time

	// Durability (zero-valued for in-memory tenants): spender is the
	// ledger every release path charges — t.led directly, or a walLedger
	// that records each deduction durably before Spend returns. persistMu
	// excludes state mutation (ingest, DDL, deduct+log) during snapshot
	// capture, so a compacted snapshot plus the rotated WAL never loses a
	// record between them.
	spender    dp.Ledger
	log        *store.TenantLog
	cfg        store.TenantConfig
	persistMu  sync.RWMutex
	compacting atomic.Bool // single-flight guard for background snapshots

	// odo tracks the budget burn rate over a sliding window (the
	// odometer gauges); audit is the tenant's DP audit log — durable
	// next to the WAL, or in-memory with the same endpoint semantics.
	odo   *dp.Odometer
	audit auditSink

	queries     atomic.Int64
	estimates   atomic.Int64
	histograms  atomic.Int64
	refusals    atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
}

// New returns a ready-to-serve in-memory Server. It panics if Open would
// fail, which only a durable configuration (Options.DataDir) can cause —
// durable servers should call Open and handle the error.
func New(opts Options) *Server {
	s, err := Open(opts)
	if err != nil {
		panic(fmt.Sprintf("serve.New: %v (use serve.Open for durable servers)", err))
	}
	return s
}

// Open returns a ready-to-serve Server. With Options.DataDir set it opens
// the durable store and replays every persisted tenant — snapshot plus
// WAL tail — back into the registry before serving, so recovered spend is
// at least the spend of every release answered before the restart.
func Open(opts Options) (*Server, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = 8 * workers
	}
	rng := xrand.NewRandomSeed()
	if opts.Seed != 0 {
		rng = xrand.New(opts.Seed)
	}
	snapEvery := opts.SnapshotEvery
	if snapEvery <= 0 {
		snapEvery = 1024
	}
	defShards := opts.DefaultShards
	if defShards < 0 || defShards > maxTenantShards {
		return nil, fmt.Errorf("serve: DefaultShards must be in [0, %d], got %d", maxTenantShards, defShards)
	}
	if defShards == 0 {
		defShards = 1
	}
	slowRel := opts.SlowRelease
	if slowRel == 0 {
		slowRel = defaultSlowRelease
	} else if slowRel < 0 {
		slowRel = 0
	}
	s := &Server{
		mux:       http.NewServeMux(),
		pool:      newPool(workers, depth),
		snapEvery: snapEvery,
		defShards: defShards,
		tenants:   map[string]*Tenant{},
		creating:  map[string]struct{}{},
		noise:     newNoiseBank(rng.Split()),
		rng:       rng,
		start:     time.Now(),
		metrics:   newMetricsSet(),
		slowRel:   slowRel,
	}
	if opts.TraceRing >= 0 {
		s.recorder = obs.NewRecorder(opts.TraceRing)
	}
	s.metrics.reg.SetExemplars(opts.Exemplars)
	obs.RegisterRuntimeGauges(s.metrics.reg)
	if opts.SLOLatency > 0 && opts.IncidentDir != "" {
		s.watchdog = newWatchdog(s, watchdogConfig{
			slo:      opts.SLOLatency,
			window:   opts.SLOWindow,
			windows:  opts.SLOWindows,
			dir:      opts.IncidentDir,
			cooldown: opts.IncidentCooldown,
		})
	}
	if opts.DataDir != "" {
		st, err := store.Open(opts.DataDir)
		if err != nil {
			s.pool.close()
			return nil, err
		}
		s.st = st
		// Install the metric instruments before recovery so replayed WAL
		// reopens and the first snapshot land on the registry, and the
		// group-commit config so recovered logs start their committers.
		st.SetMetrics(s.metrics.storeMet)
		st.SetGroupCommit(opts.GroupCommit)
		recs, err := st.Recover()
		if err == nil {
			for _, rec := range recs {
				var t *Tenant
				if t, err = s.restoreTenant(rec); err != nil {
					break
				}
				s.tenants[rec.ID] = t
			}
		}
		if err != nil {
			_ = st.Close()
			s.pool.close()
			return nil, err
		}
	}
	s.registerGauges()
	s.routes()
	if s.watchdog != nil {
		s.watchdog.start()
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the worker pool after draining queued releases, then — for
// durable servers — compacts every tenant into a final snapshot and
// closes the store. The HTTP listener's lifecycle belongs to the caller.
func (s *Server) Close() error {
	if s.watchdog != nil {
		s.watchdog.stop()
	}
	s.pool.close()
	if s.st == nil {
		return nil
	}
	flushErr := s.Flush()
	// Audit logs are per-tenant open files the store does not track.
	s.mu.RLock()
	for _, t := range s.tenants {
		if c, ok := t.audit.(io.Closer); ok {
			_ = c.Close()
		}
	}
	s.mu.RUnlock()
	closeErr := s.st.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// Workers reports the worker-pool size (for status output).
func (s *Server) Workers() int { return s.pool.workers }

// splitRNG derives an independent generator for one release.
func (s *Server) splitRNG() *xrand.RNG {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rng.Split()
}

// DB exposes the tenant's database for programmatic provisioning (demo
// data, benchmarks); its releases draw from the tenant's accountant.
func (t *Tenant) DB() *dpsql.DB { return t.db }

// CreateTenant registers a tenant with a total ε budget under pure-ε
// basic composition — the programmatic twin of POST /v1/tenants with the
// default backend.
func (s *Server) CreateTenant(id string, totalEps float64) (*Tenant, error) {
	return s.createTenant(CreateTenantRequest{ID: id, Epsilon: totalEps})
}

// CreateTenantWith registers a tenant from a full request (accounting
// backend, δ, refill window) — the programmatic twin of POST /v1/tenants.
func (s *Server) CreateTenantWith(req CreateTenantRequest) (*Tenant, error) {
	return s.createTenant(req)
}

// Ledger exposes the tenant's composition backend (native-unit
// inspection; benchmarks).
func (t *Tenant) Ledger() dp.Ledger { return t.led }

// buildLedger constructs the composition backend a tenant config names,
// returning the normalized accounting name and the δ actually in force —
// shared by tenant creation and snapshot-less recovery.
func buildLedger(cfg store.TenantConfig) (dp.Ledger, string, float64, error) {
	accounting := strings.ToLower(cfg.Accounting)
	if accounting == "" {
		accounting = "pure"
	}
	delta := cfg.Delta
	var (
		led dp.Ledger
		err error
	)
	if len(cfg.Orders) > 0 && accounting != "rdp" {
		return nil, "", 0, fmt.Errorf("serve: orders applies only to rdp accounting")
	}
	switch accounting {
	case "pure":
		if cfg.Delta != 0 {
			return nil, "", 0, fmt.Errorf("serve: delta applies only to zcdp or rdp accounting")
		}
		led, err = dp.NewBasicLedger(cfg.Epsilon)
	case "zcdp":
		if delta == 0 {
			delta = defaultDelta
		}
		led, err = dp.NewZCDPLedger(cfg.Epsilon, delta)
	case "rdp":
		if delta == 0 {
			delta = defaultDelta
		}
		led, err = dp.NewRDPLedger(cfg.Epsilon, delta, cfg.Orders)
	default:
		return nil, "", 0, fmt.Errorf("serve: unknown accounting backend %q (want \"pure\", \"zcdp\", or \"rdp\")", cfg.Accounting)
	}
	if err != nil {
		return nil, "", 0, err
	}
	if cfg.WindowSeconds < 0 {
		return nil, "", 0, fmt.Errorf("serve: window_seconds must be >= 0, got %v", cfg.WindowSeconds)
	}
	if cfg.WindowSeconds > 0 {
		led, err = dp.NewWindowedLedger(led, time.Duration(cfg.WindowSeconds*float64(time.Second)))
		if err != nil {
			return nil, "", 0, err
		}
	}
	return led, accounting, delta, nil
}

// newTenantDB builds a tenant database with the given shard topology and
// the server's worker pool installed as the shard fan-out, so release
// scans on this tenant spread across idle workers.
func (s *Server) newTenantDB(shards int) *dpsql.DB {
	db := dpsql.NewDB()
	db.SetDefaultShards(shards)
	db.SetFanout(func(n int, run func(int)) { s.pool.fan(n, run) })
	return db
}

// createTenant builds the requested composition backend and registers the
// tenant around it. On a durable server the creation record is fsynced
// before the tenant is acknowledged.
func (s *Server) createTenant(req CreateTenantRequest) (*Tenant, error) {
	if req.Shards < 0 || req.Shards > maxTenantShards {
		return nil, fmt.Errorf("serve: shards must be in [0, %d], got %d", maxTenantShards, req.Shards)
	}
	shards := req.Shards
	if shards == 0 {
		shards = s.defShards
	}
	cfg := store.TenantConfig{
		Epsilon:       req.Epsilon,
		Accounting:    req.Accounting,
		Delta:         req.Delta,
		WindowSeconds: req.WindowSeconds,
		Shards:        shards,
		Orders:        req.Orders,
	}
	led, accounting, delta, err := buildLedger(cfg)
	if err != nil {
		return nil, err
	}
	cfg.Accounting, cfg.Delta = accounting, delta
	if s.st != nil {
		// Tenant ids become directory names; refuse traversal early.
		if err := store.CheckTenantID(req.ID); err != nil {
			return nil, err
		}
	}
	// Reserve the id first, then do the store's fsyncs OUTSIDE s.mu: a
	// durable creation writes and syncs files, and holding the server-wide
	// lock across that would stall every request on every tenant.
	s.mu.Lock()
	if _, dup := s.tenants[req.ID]; dup {
		s.mu.Unlock()
		return nil, errTenantExists
	}
	if _, busy := s.creating[req.ID]; busy {
		s.mu.Unlock()
		return nil, errTenantExists
	}
	s.creating[req.ID] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.creating, req.ID)
		s.mu.Unlock()
	}()

	db := s.newTenantDB(shards)
	t := &Tenant{
		id:         req.ID,
		db:         db,
		led:        led,
		accounting: accounting,
		windowSecs: req.WindowSeconds,
		shards:     shards,
		cache:      newRespCache(s.metrics.cacheEvictions),
		created:    time.Now(),
		cfg:        cfg,
		odo:        dp.NewOdometer(0),
	}
	if s.st != nil {
		tl, err := s.st.CreateTenant(req.ID, cfg)
		if err != nil {
			// Id conflicts and bad ids are the client's; everything else
			// (mkdir, open, fsync) is a server-side persistence failure and
			// must not masquerade as a config error.
			if errors.Is(err, store.ErrTenantExists) || errors.Is(err, store.ErrBadTenantID) {
				return nil, err
			}
			return nil, fmt.Errorf("%w: creating durable tenant: %v", errPersist, err)
		}
		t.log = tl
	}
	if t.audit, err = s.openAudit(req.ID); err != nil {
		return nil, err
	}
	t.spender = &tenantLedger{t: t, s: s}
	db.SetLedger(t.spender)
	s.mu.Lock()
	s.tenants[req.ID] = t
	s.mu.Unlock()
	return t, nil
}

// Tenant looks a tenant up by id — programmatic twin of GET
// /v1/tenants/{t} for embedders (demo loaders, benchmarks).
func (s *Server) Tenant(id string) (*Tenant, bool) { return s.tenantByID(id) }

// tenantByID looks a tenant up.
func (s *Server) tenantByID(id string) (*Tenant, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tenants[id]
	return t, ok
}

// tenantIDs returns the sorted tenant ids.
func (s *Server) tenantIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]string, 0, len(s.tenants))
	for id := range s.tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
