// Package serve is the multi-tenant DP query service: an HTTP+JSON layer
// that hosts many isolated tenants, each owning a dpsql database and one
// privacy ledger, and executes estimator releases and SQL queries
// concurrently through a bounded worker pool.
//
// This is the system shape the paper's universal estimators need to be
// useful at scale: many statistics served off one dataset under one
// accounted privacy budget, with ingestion streaming in while queries
// run. Because the estimators need no range, scale, or family hints, the
// service exposes them with no tuning knobs beyond (statistic, ε) — a
// tenant cannot misconfigure a clipping bound, because there is none.
//
// Budget model: a tenant is created with a nominal budget and a pluggable
// composition backend (dp.Ledger) that decides how releases compose:
//
//   - "pure" (default): basic composition of pure ε (Lemma 2.2) — k
//     releases at ε₀ cost k·ε₀.
//   - "zcdp": zCDP accounting at a (ε, δ) target — each pure release
//     costs only ε₀²/2 in ρ (Bun & Steinke 2016), so sustained
//     many-small-releases traffic lasts quadratically longer; natively
//     Gaussian releases are charged their ρ directly.
//   - either backend may be wrapped with a renewable window
//     (window_seconds): the budget refills to full on a fixed wall-clock
//     cadence, turning a lifetime total into a rate.
//
// Every release — SQL query or direct estimator call — names its own cost
// and is atomically deducted from the tenant's single ledger before the
// mechanism runs; a request that would overdraw is refused with HTTP 429
// and releases nothing. Failed releases after deduction stay charged
// (refunding on data-dependent failures would leak through the budget
// itself). Schema DDL and row ingestion touch stored data only and are
// free, as are cache replays of byte-identical repeated releases
// (post-processing of an already-released answer).
//
// Endpoints (all JSON; see handlers.go for wire types):
//
//	POST /v1/tenants                          create a tenant (budget + accounting backend)
//	GET  /v1/tenants                          list tenant ids
//	GET  /v1/tenants/{t}                      budget (native units + (ε, δ) view) + counters
//	POST /v1/tenants/{t}/tables               create a table (schema + user column)
//	POST /v1/tenants/{t}/tables/{name}/rows   append rows (streaming ingestion)
//	POST /v1/tenants/{t}/query                dpsql SELECT under user-level DP
//	POST /v1/tenants/{t}/estimate             one estimator release on a column
//	GET  /v1/stats                            server-wide counters (incl. cache hits/misses)
//	GET  /v1/healthz                          liveness
package serve

import (
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dp"
	"repro/internal/dpsql"
	"repro/internal/xrand"
)

// defaultDelta is the δ a zcdp tenant gets when the request leaves it
// unset.
const defaultDelta = 1e-6

// Options configures a Server.
type Options struct {
	// Workers bounds the number of releases executing concurrently
	// (estimators are CPU-bound; unbounded concurrency only adds
	// scheduling overhead). 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of queued-but-not-running releases
	// before the server sheds load with 503. 0 means 8×Workers.
	QueueDepth int
	// Seed makes the server's noise deterministic — tests and benchmarks
	// only; production must leave it 0 (OS entropy) or the privacy
	// guarantee is void.
	Seed uint64
}

// Server hosts tenants and serves the HTTP API. Create with New; it is
// safe for concurrent use.
type Server struct {
	mux  *http.ServeMux
	pool *pool

	mu      sync.RWMutex
	tenants map[string]*Tenant

	// rng is the root generator; per-release generators are split off
	// under rngMu because xrand.RNG itself is single-threaded.
	rngMu sync.Mutex
	rng   *xrand.RNG

	start       time.Time
	queries     atomic.Int64 // SQL releases attempted
	estimates   atomic.Int64 // estimator releases attempted
	refusals    atomic.Int64 // releases refused for budget
	shed        atomic.Int64 // requests shed by the full queue
	cacheHits   atomic.Int64 // releases replayed from a tenant cache (free)
	cacheMisses atomic.Int64 // release attempts that missed the cache
}

// Tenant is one isolated customer: a database, one privacy ledger (the
// composition backend) shared by every release path, a response cache,
// and counters.
type Tenant struct {
	id         string
	db         *dpsql.DB
	led        dp.Ledger
	accounting string  // "pure" or "zcdp"
	windowSecs float64 // > 0 when the ledger refills on a window
	cache      *respCache
	created    time.Time

	queries     atomic.Int64
	estimates   atomic.Int64
	refusals    atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
}

// New returns a ready-to-serve Server.
func New(opts Options) *Server {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = 8 * workers
	}
	rng := xrand.NewRandomSeed()
	if opts.Seed != 0 {
		rng = xrand.New(opts.Seed)
	}
	s := &Server{
		mux:     http.NewServeMux(),
		pool:    newPool(workers, depth),
		tenants: map[string]*Tenant{},
		rng:     rng,
		start:   time.Now(),
	}
	s.routes()
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the worker pool after draining queued releases. The HTTP
// listener's lifecycle belongs to the caller.
func (s *Server) Close() { s.pool.close() }

// Workers reports the worker-pool size (for status output).
func (s *Server) Workers() int { return s.pool.workers }

// splitRNG derives an independent generator for one release.
func (s *Server) splitRNG() *xrand.RNG {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rng.Split()
}

// DB exposes the tenant's database for programmatic provisioning (demo
// data, benchmarks); its releases draw from the tenant's accountant.
func (t *Tenant) DB() *dpsql.DB { return t.db }

// CreateTenant registers a tenant with a total ε budget under pure-ε
// basic composition — the programmatic twin of POST /v1/tenants with the
// default backend.
func (s *Server) CreateTenant(id string, totalEps float64) (*Tenant, error) {
	return s.createTenant(CreateTenantRequest{ID: id, Epsilon: totalEps})
}

// CreateTenantWith registers a tenant from a full request (accounting
// backend, δ, refill window) — the programmatic twin of POST /v1/tenants.
func (s *Server) CreateTenantWith(req CreateTenantRequest) (*Tenant, error) {
	return s.createTenant(req)
}

// Ledger exposes the tenant's composition backend (native-unit
// inspection; benchmarks).
func (t *Tenant) Ledger() dp.Ledger { return t.led }

// createTenant builds the requested composition backend and registers the
// tenant around it.
func (s *Server) createTenant(req CreateTenantRequest) (*Tenant, error) {
	accounting := strings.ToLower(req.Accounting)
	if accounting == "" {
		accounting = "pure"
	}
	delta := req.Delta
	var (
		led dp.Ledger
		err error
	)
	switch accounting {
	case "pure":
		if req.Delta != 0 {
			return nil, fmt.Errorf("serve: delta applies only to zcdp accounting")
		}
		led, err = dp.NewBasicLedger(req.Epsilon)
	case "zcdp":
		if delta == 0 {
			delta = defaultDelta
		}
		led, err = dp.NewZCDPLedger(req.Epsilon, delta)
	default:
		return nil, fmt.Errorf("serve: unknown accounting backend %q (want \"pure\" or \"zcdp\")", req.Accounting)
	}
	if err != nil {
		return nil, err
	}
	if req.WindowSeconds < 0 {
		return nil, fmt.Errorf("serve: window_seconds must be >= 0, got %v", req.WindowSeconds)
	}
	if req.WindowSeconds > 0 {
		led, err = dp.NewWindowedLedger(led, time.Duration(req.WindowSeconds*float64(time.Second)))
		if err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tenants[req.ID]; dup {
		return nil, errTenantExists
	}
	db := dpsql.NewDB()
	db.SetLedger(led)
	t := &Tenant{
		id:         req.ID,
		db:         db,
		led:        led,
		accounting: accounting,
		windowSecs: req.WindowSeconds,
		cache:      newRespCache(),
		created:    time.Now(),
	}
	s.tenants[req.ID] = t
	return t, nil
}

// tenantByID looks a tenant up.
func (s *Server) tenantByID(id string) (*Tenant, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tenants[id]
	return t, ok
}

// tenantIDs returns the sorted tenant ids.
func (s *Server) tenantIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]string, 0, len(s.tenants))
	for id := range s.tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
