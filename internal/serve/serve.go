// Package serve is the multi-tenant DP query service: an HTTP+JSON layer
// that hosts many isolated tenants, each owning a dpsql database and one
// privacy-budget accountant, and executes estimator releases and SQL
// queries concurrently through a bounded worker pool.
//
// This is the system shape the paper's universal estimators need to be
// useful at scale: many statistics served off one dataset under one
// accounted ε budget (basic composition, Lemma 2.2), with ingestion
// streaming in while queries run. Because the estimators need no range,
// scale, or family hints, the service exposes them with no tuning knobs
// beyond (statistic, ε) — a tenant cannot misconfigure a clipping bound,
// because there is none.
//
// Budget model: a tenant is created with a total ε. Every release — SQL
// query or direct estimator call — names its own ε and is atomically
// deducted from the tenant's single accountant before the mechanism runs;
// a request that would overdraw is refused with HTTP 429 and releases
// nothing. Failed releases after deduction stay charged (refunding on
// data-dependent failures would leak through the budget itself). Schema
// DDL and row ingestion touch stored data only and are free.
//
// Endpoints (all JSON; see handlers.go for wire types):
//
//	POST /v1/tenants                          create a tenant with a total ε
//	GET  /v1/tenants                          list tenant ids
//	GET  /v1/tenants/{t}                      budget + request counters
//	POST /v1/tenants/{t}/tables               create a table (schema + user column)
//	POST /v1/tenants/{t}/tables/{name}/rows   append rows (streaming ingestion)
//	POST /v1/tenants/{t}/query                dpsql SELECT under user-level DP
//	POST /v1/tenants/{t}/estimate             one estimator release on a column
//	GET  /v1/stats                            server-wide counters
//	GET  /v1/healthz                          liveness
package serve

import (
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dp"
	"repro/internal/dpsql"
	"repro/internal/xrand"
)

// Options configures a Server.
type Options struct {
	// Workers bounds the number of releases executing concurrently
	// (estimators are CPU-bound; unbounded concurrency only adds
	// scheduling overhead). 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of queued-but-not-running releases
	// before the server sheds load with 503. 0 means 8×Workers.
	QueueDepth int
	// Seed makes the server's noise deterministic — tests and benchmarks
	// only; production must leave it 0 (OS entropy) or the privacy
	// guarantee is void.
	Seed uint64
}

// Server hosts tenants and serves the HTTP API. Create with New; it is
// safe for concurrent use.
type Server struct {
	mux  *http.ServeMux
	pool *pool

	mu      sync.RWMutex
	tenants map[string]*Tenant

	// rng is the root generator; per-release generators are split off
	// under rngMu because xrand.RNG itself is single-threaded.
	rngMu sync.Mutex
	rng   *xrand.RNG

	start     time.Time
	queries   atomic.Int64 // SQL releases attempted
	estimates atomic.Int64 // estimator releases attempted
	refusals  atomic.Int64 // releases refused for budget
	shed      atomic.Int64 // requests shed by the full queue
}

// Tenant is one isolated customer: a database, one budget accountant
// shared by every release path, and counters.
type Tenant struct {
	id      string
	db      *dpsql.DB
	acct    *dp.Accountant
	created time.Time

	queries   atomic.Int64
	estimates atomic.Int64
	refusals  atomic.Int64
}

// New returns a ready-to-serve Server.
func New(opts Options) *Server {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = 8 * workers
	}
	rng := xrand.NewRandomSeed()
	if opts.Seed != 0 {
		rng = xrand.New(opts.Seed)
	}
	s := &Server{
		mux:     http.NewServeMux(),
		pool:    newPool(workers, depth),
		tenants: map[string]*Tenant{},
		rng:     rng,
		start:   time.Now(),
	}
	s.routes()
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the worker pool after draining queued releases. The HTTP
// listener's lifecycle belongs to the caller.
func (s *Server) Close() { s.pool.close() }

// Workers reports the worker-pool size (for status output).
func (s *Server) Workers() int { return s.pool.workers }

// splitRNG derives an independent generator for one release.
func (s *Server) splitRNG() *xrand.RNG {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rng.Split()
}

// DB exposes the tenant's database for programmatic provisioning (demo
// data, benchmarks); its releases draw from the tenant's accountant.
func (t *Tenant) DB() *dpsql.DB { return t.db }

// CreateTenant registers a tenant with a total ε budget — the
// programmatic twin of POST /v1/tenants.
func (s *Server) CreateTenant(id string, totalEps float64) (*Tenant, error) {
	return s.createTenant(id, totalEps)
}

// createTenant registers a tenant with a total ε budget.
func (s *Server) createTenant(id string, totalEps float64) (*Tenant, error) {
	acct, err := dp.NewAccountant(totalEps)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tenants[id]; dup {
		return nil, errTenantExists
	}
	db := dpsql.NewDB()
	db.SetAccountant(acct)
	t := &Tenant{id: id, db: db, acct: acct, created: time.Now()}
	s.tenants[id] = t
	return t, nil
}

// tenantByID looks a tenant up.
func (s *Server) tenantByID(id string) (*Tenant, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tenants[id]
	return t, ok
}

// tenantIDs returns the sorted tenant ids.
func (s *Server) tenantIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]string, 0, len(s.tenants))
	for id := range s.tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
