package serve

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestAuditMatchesLedger is the acceptance invariant: for a pure tenant
// the audit log replays exactly the releases the ledger charged — same
// count, and NativeCost summing to TenantStatus.Spent — while cache
// replays and budget refusals leave no record.
func TestAuditMatchesLedger(t *testing.T) {
	srv := New(Options{Seed: 11, Workers: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := newClient(t, ts.URL)
	seedTenant(t, c, "acme", 2, 100)
	// The whole test runs in a burst the odometer would coalesce into one
	// sample (its clock is wall time); inject a clock that advances a
	// second per reading so the burn rate has a measurable baseline.
	tn, ok := srv.Tenant("acme")
	if !ok {
		t.Fatal("tenant not registered")
	}
	fake := time.Unix(1_700_000_000, 0)
	tn.odo.SetNow(func() time.Time { fake = fake.Add(time.Second); return fake })

	// Five distinct charged releases: four estimates and one SQL query.
	for i := 0; i < 4; i++ {
		p := 0.2 + 0.15*float64(i)
		if code := c.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
			Table: "metrics", Column: "v", Stat: "quantile", P: p, Epsilon: 0.25,
		}, nil); code != http.StatusOK {
			t.Fatalf("estimate %d: %d", i, code)
		}
	}
	if code := c.do("POST", "/v1/tenants/acme/query", QueryRequest{
		SQL: "SELECT COUNT(*) FROM metrics", Epsilon: 0.5,
	}, nil); code != http.StatusOK {
		t.Fatal("query")
	}
	// A cache replay charges nothing and must not be audited.
	var q QueryResponse
	if code := c.do("POST", "/v1/tenants/acme/query", QueryRequest{
		SQL: "SELECT COUNT(*) FROM metrics", Epsilon: 0.5,
	}, &q); code != http.StatusOK || !q.Cached {
		t.Fatalf("replay: code=%d cached=%v", code, q.Cached)
	}
	// A budget refusal charges nothing and must not be audited
	// (spent = 4*0.25 + 0.5 = 1.5 of 2; 0.75 overdraws).
	if code := c.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
		Table: "metrics", Column: "v", Stat: "median", Epsilon: 0.75,
	}, nil); code != http.StatusTooManyRequests {
		t.Fatal("overdraw should refuse")
	}

	var st TenantStatus
	if code := c.do("GET", "/v1/tenants/acme", nil, &st); code != http.StatusOK {
		t.Fatal("status")
	}
	var audit AuditResponse
	if code := c.do("GET", "/v1/tenants/acme/audit", nil, &audit); code != http.StatusOK {
		t.Fatal("audit")
	}
	if audit.Tenant != "acme" || audit.Total != 5 || len(audit.Records) != 5 {
		t.Fatalf("audit page: tenant=%q total=%d records=%d, want acme/5/5",
			audit.Tenant, audit.Total, len(audit.Records))
	}
	if st.AuditRecords != audit.Total {
		t.Fatalf("TenantStatus.AuditRecords=%d, audit Total=%d", st.AuditRecords, audit.Total)
	}
	var sum float64
	paths := map[string]int{}
	for i, r := range audit.Records {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d, want %d (oldest first, dense)", i, r.Seq, i+1)
		}
		if r.ReleaseID == "" || r.Unit != "eps" || r.NativeCost <= 0 {
			t.Fatalf("record %d malformed: %+v", i, r)
		}
		sum += r.NativeCost
		paths[r.Path]++
	}
	if paths["estimate"] != 4 || paths["query"] != 1 {
		t.Fatalf("audited paths %v, want 4 estimates + 1 query", paths)
	}
	if math.Abs(sum-st.Spent) > 1e-12 {
		t.Fatalf("audit sum %v != ledger spent %v", sum, st.Spent)
	}
	if st.BurnPerSecond <= 0 {
		t.Fatalf("burn rate %v after 5 releases, want > 0", st.BurnPerSecond)
	}
}

// TestAuditPagination walks the log in pages of 2 and checks the cursor
// contract: NextAfter chains pages with no gaps or repeats and is absent
// on the last page; bad parameters are 400s.
func TestAuditPagination(t *testing.T) {
	srv := New(Options{Seed: 12, Workers: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := newClient(t, ts.URL)
	seedTenant(t, c, "acme", 10, 60)

	const releases = 5
	for i := 0; i < releases; i++ {
		p := 0.1 + 0.15*float64(i)
		if code := c.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
			Table: "metrics", Column: "v", Stat: "quantile", P: p, Epsilon: 0.1,
		}, nil); code != http.StatusOK {
			t.Fatalf("estimate %d: %d", i, code)
		}
	}
	var seqs []uint64
	after, pages := uint64(0), 0
	for {
		var page AuditResponse
		path := fmt.Sprintf("/v1/tenants/acme/audit?limit=2&after=%d", after)
		if code := c.do("GET", path, nil, &page); code != http.StatusOK {
			t.Fatalf("page after=%d: %d", after, code)
		}
		pages++
		for _, r := range page.Records {
			seqs = append(seqs, r.Seq)
		}
		if page.NextAfter == 0 {
			break
		}
		after = page.NextAfter
		if pages > releases {
			t.Fatal("pagination does not terminate")
		}
	}
	if pages != 3 || len(seqs) != releases {
		t.Fatalf("walked %d pages, %d records; want 3 pages, %d records", pages, len(seqs), releases)
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("page walk out of order: %v", seqs)
		}
	}
	// Cursor past the end: empty page, no NextAfter.
	var tail AuditResponse
	if code := c.do("GET", "/v1/tenants/acme/audit?after=999", nil, &tail); code != http.StatusOK {
		t.Fatal("tail page")
	}
	if len(tail.Records) != 0 || tail.NextAfter != 0 {
		t.Fatalf("past-the-end page: %+v", tail)
	}
	// Malformed parameters.
	if code := c.do("GET", "/v1/tenants/acme/audit?after=x", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("after=x: %d, want 400", code)
	}
	if code := c.do("GET", "/v1/tenants/acme/audit?limit=0", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("limit=0: %d, want 400", code)
	}
}

// TestAuditSurvivesCrash: on a durable server every acknowledged
// release's audit line is fsynced before the answer goes out, so a crash
// (listener killed, no Close/flush) loses nothing: the reopened log
// replays the same records and still sums to the recovered spend.
func TestAuditSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	_, cA, stopA := openDurable(t, dir, 13)
	if code := cA.do("POST", "/v1/tenants", CreateTenantRequest{ID: "acme", Epsilon: 10}, nil); code != http.StatusCreated {
		t.Fatal("create")
	}
	if code := cA.do("POST", "/v1/tenants/acme/tables", CreateTableRequest{
		Name:       "m",
		Columns:    []ColumnSpec{{Name: "uid", Kind: "string"}, {Name: "v", Kind: "float"}},
		UserColumn: "uid",
	}, nil); code != http.StatusCreated {
		t.Fatal("table")
	}
	rows := make([][]any, 80)
	for u := range rows {
		rows[u] = []any{fmt.Sprintf("u%02d", u), float64(u)}
	}
	if code := cA.do("POST", "/v1/tenants/acme/tables/m/rows", InsertRowsRequest{Rows: rows}, nil); code != http.StatusOK {
		t.Fatal("insert")
	}
	for i := 0; i < 3; i++ {
		p := 0.2 + 0.2*float64(i)
		if code := cA.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
			Table: "m", Column: "v", Stat: "quantile", P: p, Epsilon: 0.5,
		}, nil); code != http.StatusOK {
			t.Fatalf("release %d: %d", i, code)
		}
	}
	var auditA AuditResponse
	if code := cA.do("GET", "/v1/tenants/acme/audit", nil, &auditA); code != http.StatusOK {
		t.Fatal("pre-crash audit")
	}
	if auditA.Total != 3 {
		t.Fatalf("pre-crash audit total %d, want 3", auditA.Total)
	}
	stopA() // crash: no Close, no flush

	srvB, cB, stopB := openDurable(t, dir, 14)
	defer stopB()
	defer srvB.Close()
	var auditB AuditResponse
	if code := cB.do("GET", "/v1/tenants/acme/audit", nil, &auditB); code != http.StatusOK {
		t.Fatal("post-crash audit")
	}
	if auditB.Total != auditA.Total || len(auditB.Records) != len(auditA.Records) {
		t.Fatalf("crash lost audit lines: %d/%d -> %d/%d",
			auditA.Total, len(auditA.Records), auditB.Total, len(auditB.Records))
	}
	var sum float64
	for i, r := range auditB.Records {
		a := auditA.Records[i]
		if r.Seq != a.Seq || r.ReleaseID != a.ReleaseID || r.NativeCost != a.NativeCost {
			t.Fatalf("record %d changed across crash: %+v -> %+v", i, a, r)
		}
		sum += r.NativeCost
	}
	var st TenantStatus
	if code := cB.do("GET", "/v1/tenants/acme", nil, &st); code != http.StatusOK {
		t.Fatal("recovered status")
	}
	if math.Abs(sum-st.Spent) > 1e-12 {
		t.Fatalf("recovered audit sum %v != recovered spend %v", sum, st.Spent)
	}
	// The recovered log keeps appending with the same seq discipline.
	if code := cB.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
		Table: "m", Column: "v", Stat: "median", Epsilon: 0.5,
	}, nil); code != http.StatusOK {
		t.Fatal("post-recovery release")
	}
	var auditC AuditResponse
	if code := cB.do("GET", "/v1/tenants/acme/audit", nil, &auditC); code != http.StatusOK {
		t.Fatal("post-recovery audit")
	}
	if auditC.Total != auditA.Total+1 || auditC.Records[len(auditC.Records)-1].Seq != auditA.Total+1 {
		t.Fatalf("post-recovery append broke seq: total=%d last=%+v",
			auditC.Total, auditC.Records[len(auditC.Records)-1])
	}
}
