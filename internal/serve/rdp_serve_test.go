package serve

import (
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/dp"
)

// ---------- rdp accounting over the wire ----------

func TestCreateTenantRDPConfig(t *testing.T) {
	srv := New(Options{Seed: 31})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := newClient(t, ts.URL)

	var st TenantStatus
	if code := c.do("POST", "/v1/tenants", CreateTenantRequest{
		ID: "r", Epsilon: 2, Accounting: "rdp",
	}, &st); code != http.StatusCreated {
		t.Fatalf("create rdp tenant: status %d", code)
	}
	if st.Accounting != "rdp" || st.Unit != "rdp" {
		t.Errorf("status accounting/unit = %q/%q, want rdp/rdp", st.Accounting, st.Unit)
	}
	if st.Delta != 1e-6 {
		t.Errorf("default delta = %v, want 1e-6", st.Delta)
	}
	// The rdp scalar views are the (ε, δ) conversion: total is the
	// nominal ε, nothing spent yet, the full order grid echoed.
	if st.Total != 2 || st.TotalEpsilon != 2 || st.Spent != 0 || st.SpentEpsilon != 0 {
		t.Errorf("fresh rdp budget view = %+v", st)
	}
	def := dp.DefaultRDPOrders()
	if len(st.Orders) != len(def) || st.Orders[0] != def[0] || st.Orders[len(st.Orders)-1] != 64 {
		t.Errorf("orders = %v, want the default grid %v", st.Orders, def)
	}
	if len(st.SpentRDP) != len(st.Orders) {
		t.Errorf("spent_rdp has %d entries for %d orders", len(st.SpentRDP), len(st.Orders))
	}

	// A custom grid is normalized (sorted, deduped) and echoed.
	if code := c.do("POST", "/v1/tenants", CreateTenantRequest{
		ID: "r2", Epsilon: 20, Accounting: "rdp", Orders: []float64{8, 2, 8, 4},
	}, &st); code != http.StatusCreated {
		t.Fatalf("create custom-grid tenant: status %d", code)
	}
	if len(st.Orders) != 3 || st.Orders[0] != 2 || st.Orders[1] != 4 || st.Orders[2] != 8 {
		t.Errorf("normalized orders = %v, want [2 4 8]", st.Orders)
	}

	// Config mistakes are refused: orders without rdp, an invalid order,
	// and a grid that cannot certify the target at any order.
	for i, bad := range []CreateTenantRequest{
		{ID: "x1", Epsilon: 1, Orders: []float64{2, 4}},
		{ID: "x2", Epsilon: 1, Accounting: "zcdp", Orders: []float64{2, 4}},
		{ID: "x3", Epsilon: 1, Accounting: "rdp", Orders: []float64{1}},
		{ID: "x4", Epsilon: 0.01, Accounting: "rdp", Orders: []float64{2, 4}},
	} {
		if code := c.do("POST", "/v1/tenants", bad, nil); code != http.StatusBadRequest {
			t.Errorf("bad config %d: status %d, want 400", i, code)
		}
	}
}

// After releases, the per-order spend vector is exposed and consistent:
// strictly increasing in α for pure+Gaussian spends, with the scalar
// view equal to the best order's conversion.
func TestRDPTenantStatusPerOrderSpend(t *testing.T) {
	srv := New(Options{Seed: 32, Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := newClient(t, ts.URL)

	if code := c.do("POST", "/v1/tenants", CreateTenantRequest{
		ID: "acme", Epsilon: 4, Accounting: "rdp",
	}, nil); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	seedTables(t, c, "acme", 150)
	if code := c.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
		Table: "metrics", Column: "v", Stat: "median", Epsilon: 0.1,
	}, nil); code != http.StatusOK {
		t.Fatalf("median release: %d", code)
	}
	// A natively-ρ Gaussian count lands on the same ledger as curve ρα.
	if code := c.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
		Table: "metrics", Stat: "count", Rho: 0.001,
	}, nil); code != http.StatusOK {
		t.Fatalf("rho count release: %d", code)
	}
	var st TenantStatus
	if code := c.do("GET", "/v1/tenants/acme", nil, &st); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if len(st.SpentRDP) != len(st.Orders) || len(st.Orders) == 0 {
		t.Fatalf("per-order spend missing: %d spends, %d orders", len(st.SpentRDP), len(st.Orders))
	}
	for i := range st.Orders {
		if st.SpentRDP[i] <= 0 {
			t.Errorf("order %v spent %v, want > 0 after releases", st.Orders[i], st.SpentRDP[i])
		}
		if i > 0 && st.SpentRDP[i] <= st.SpentRDP[i-1] {
			t.Errorf("per-order spend not increasing in alpha: %v", st.SpentRDP)
		}
	}
	if st.BestOrder == 0 {
		t.Errorf("best_order = 0, want the certifying alpha")
	}
	// The scalar view is the conversion at the best order.
	i := -1
	for j, a := range st.Orders {
		if a == st.BestOrder {
			i = j
		}
	}
	if i < 0 {
		t.Fatalf("best_order %v not on the grid %v", st.BestOrder, st.Orders)
	}
	want := dp.RDPToDP(st.SpentRDP[i], st.Orders[i], st.Delta)
	if math.Abs(st.Spent-want) > 1e-12 {
		t.Errorf("spent = %v, want conversion at best order %v = %v", st.Spent, st.BestOrder, want)
	}
	if st.SpentEpsilon != st.Spent {
		t.Errorf("spent_epsilon %v != spent %v (rdp scalar views are the conversion)", st.SpentEpsilon, st.Spent)
	}
}

// A data dir holding all three backends at once — pure, zcdp, and rdp
// (plus a windowed rdp) — boots with every tenant's spend intact: the
// rdp tenant's native per-order vector survives snapshot + WAL-tail
// replay componentwise, never regressing. The crash lands after a
// mid-stream Flush plus further releases, so recovery exercises both the
// snapshot and the tail.
func TestMixedBackendsDataDirBoot(t *testing.T) {
	dir := t.TempDir()
	srvA, cA, stopA := openDurable(t, dir, 41)
	for _, req := range []CreateTenantRequest{
		{ID: "pure-t", Epsilon: 16},
		{ID: "zcdp-t", Epsilon: 16, Accounting: "zcdp"},
		{ID: "rdp-t", Epsilon: 4, Accounting: "rdp"},
		{ID: "rdpwin-t", Epsilon: 4, Accounting: "rdp", WindowSeconds: 3600},
	} {
		if code := cA.do("POST", "/v1/tenants", req, nil); code != http.StatusCreated {
			t.Fatalf("create %s: status %d", req.ID, code)
		}
		seedTables(t, cA, req.ID, 100)
	}
	tenants := []string{"pure-t", "zcdp-t", "rdp-t", "rdpwin-t"}
	spend := func(c *client, round int) {
		for _, id := range tenants {
			if code := c.do("POST", "/v1/tenants/"+id+"/estimate", EstimateRequest{
				Table: "metrics", Column: "v", Stat: "quantile",
				P: 0.2 + 0.1*float64(round), Epsilon: 0.25,
			}, nil); code != http.StatusOK {
				t.Fatalf("%s quantile round %d: status %d", id, round, code)
			}
		}
		// The ρ-native Gaussian count on the backends that can price it.
		for _, id := range []string{"zcdp-t", "rdp-t"} {
			if code := c.do("POST", "/v1/tenants/"+id+"/estimate", EstimateRequest{
				Table: "metrics", Stat: "count", Rho: 0.001 * (1 + float64(round)*1e-6),
			}, nil); code != http.StatusOK {
				t.Fatalf("%s rho count round %d: status %d", id, round, code)
			}
		}
	}
	spend(cA, 0)
	// Mid-stream compaction: recovery must stitch snapshot + WAL tail.
	if err := srvA.Flush(); err != nil {
		t.Fatal(err)
	}
	spend(cA, 1)
	before := map[string]TenantStatus{}
	for _, id := range tenants {
		var st TenantStatus
		if code := cA.do("GET", "/v1/tenants/"+id, nil, &st); code != http.StatusOK {
			t.Fatalf("status %s: %d", id, code)
		}
		if st.Spent <= 0 {
			t.Fatalf("%s pre-crash spend = %v, want > 0", id, st.Spent)
		}
		before[id] = st
	}
	stopA() // crash: no Close, no final flush

	srvB, cB, stopB := openDurable(t, dir, 42)
	defer stopB()
	defer srvB.Close()
	for _, id := range tenants {
		var after TenantStatus
		if code := cB.do("GET", "/v1/tenants/"+id, nil, &after); code != http.StatusOK {
			t.Fatalf("recovered status %s: %d", id, code)
		}
		b := before[id]
		if after.Accounting != b.Accounting || after.Unit != b.Unit {
			t.Fatalf("%s recovered as %s/%s, was %s/%s", id, after.Accounting, after.Unit, b.Accounting, b.Unit)
		}
		if after.Spent < b.Spent || after.SpentEpsilon < b.SpentEpsilon {
			t.Fatalf("%s spend refilled: %v -> %v (eps view %v -> %v)",
				id, b.Spent, after.Spent, b.SpentEpsilon, after.SpentEpsilon)
		}
		if after.Total != b.Total {
			t.Fatalf("%s ceiling changed: %v -> %v", id, b.Total, after.Total)
		}
		if b.Unit == "rdp" {
			if len(after.Orders) != len(b.Orders) || len(after.SpentRDP) != len(b.SpentRDP) {
				t.Fatalf("%s rdp grid changed: %d/%d orders, %d/%d spends",
					id, len(after.Orders), len(b.Orders), len(after.SpentRDP), len(b.SpentRDP))
			}
			for i := range b.Orders {
				if after.Orders[i] != b.Orders[i] {
					t.Fatalf("%s order %d changed: %v -> %v", id, i, b.Orders[i], after.Orders[i])
				}
				if after.SpentRDP[i] < b.SpentRDP[i] {
					t.Fatalf("%s per-order spend regressed at alpha=%v: %v -> %v",
						id, b.Orders[i], b.SpentRDP[i], after.SpentRDP[i])
				}
			}
		}
		// The recovered tenant still answers releases from recovered rows.
		if code := cB.do("POST", "/v1/tenants/"+id+"/estimate", EstimateRequest{
			Table: "metrics", Column: "v", Stat: "median", Epsilon: 0.25,
		}, nil); code != http.StatusOK {
			t.Fatalf("%s post-recovery release: status %d", id, code)
		}
	}
}

// The headline three-way ordering over the wire: with the same nominal
// (ε, δ) budget and the same mixed Laplace+Gaussian stream, the rdp twin
// sustains at least as many releases as the zcdp twin, which sustains at
// least twice the pure twin — the serve-level mirror of the updp-bench
// -compare duel. (The pure twin takes the count releases through Laplace
// at ε₀, since the Gaussian is unrepresentable on its backend.)
func TestRDPTenantSustainsMostReleases(t *testing.T) {
	srv := New(Options{Seed: 33, Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := newClient(t, ts.URL)

	const (
		nominalEps = 0.5
		releaseEps = 0.005
		rho0       = releaseEps * releaseEps / 2 // the zCDP price of ε₀: matched streams
		maxTries   = 2000
	)
	seedTenant(t, c, "pure-twin", nominalEps, 120)
	for _, req := range []CreateTenantRequest{
		{ID: "zcdp-twin", Epsilon: nominalEps, Accounting: "zcdp"},
		{ID: "rdp-twin", Epsilon: nominalEps, Accounting: "rdp"},
	} {
		if code := c.do("POST", "/v1/tenants", req, nil); code != http.StatusCreated {
			t.Fatalf("create %s: status %d", req.ID, code)
		}
		seedTables(t, c, req.ID, 120)
	}
	sustained := func(tenant string, rhoNative bool) int {
		for i := 0; i < maxTries; i++ {
			var req EstimateRequest
			if i%2 == 1 {
				// Gaussian count; the tiny rho jitter keeps each release
				// byte-distinct so none is a free cache replay.
				req = EstimateRequest{Table: "metrics", Stat: "count", Rho: rho0 * (1 + float64(i)*1e-9)}
				if !rhoNative {
					req = EstimateRequest{Table: "metrics", Stat: "count", Epsilon: releaseEps * (1 + float64(i)*1e-9)}
				}
			} else {
				p := 0.01 + 0.98*float64(i)/maxTries
				req = EstimateRequest{Table: "metrics", Column: "v", Stat: "quantile", P: p, Epsilon: releaseEps}
			}
			code := c.do("POST", "/v1/tenants/"+tenant+"/estimate", req, nil)
			switch code {
			case http.StatusOK:
			case http.StatusTooManyRequests:
				return i
			default:
				t.Fatalf("%s release %d: status %d", tenant, i, code)
			}
		}
		return maxTries
	}
	nPure := sustained("pure-twin", false)
	nZCDP := sustained("zcdp-twin", true)
	nRDP := sustained("rdp-twin", true)
	t.Logf("mixed workload sustained: pure=%d zcdp=%d rdp=%d (nominal eps=%g, per-release eps=%g)",
		nPure, nZCDP, nRDP, nominalEps, releaseEps)
	if nZCDP < 2*nPure {
		t.Errorf("zcdp sustained %d, want >= 2x pure's %d", nZCDP, nPure)
	}
	if nRDP < nZCDP {
		t.Errorf("rdp sustained %d < zcdp's %d", nRDP, nZCDP)
	}
}
