package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/xrand"
)

// client is a minimal JSON client for the test server.
type client struct {
	t    *testing.T
	base string
	hc   *http.Client
}

func newClient(t *testing.T, base string) *client {
	return &client{t: t, base: base, hc: &http.Client{}}
}

// do posts (or gets, when body is nil) and decodes the JSON reply into
// out, returning the status code.
func (c *client) do(method, path string, body, out any) int {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			c.t.Fatalf("%s %s: decoding status-%d body: %v", method, path, resp.StatusCode, err)
		}
	}
	return resp.StatusCode
}

// seedTenant creates a tenant with totalEps and a metrics table holding
// nUsers users with ~N(100, 5) values, 2 rows each.
func seedTenant(t *testing.T, c *client, id string, totalEps float64, nUsers int) {
	t.Helper()
	if code := c.do("POST", "/v1/tenants", CreateTenantRequest{ID: id, Epsilon: totalEps}, nil); code != http.StatusCreated {
		t.Fatalf("create tenant: status %d", code)
	}
	code := c.do("POST", "/v1/tenants/"+id+"/tables", CreateTableRequest{
		Name: "metrics",
		Columns: []ColumnSpec{
			{Name: "uid", Kind: "string"},
			{Name: "v", Kind: "float"},
			{Name: "n", Kind: "int"},
			{Name: "grp", Kind: "string"},
		},
		UserColumn: "uid",
	}, nil)
	if code != http.StatusCreated {
		t.Fatalf("create table: status %d", code)
	}
	rng := xrand.New(42)
	rows := make([][]any, 0, 2*nUsers)
	for u := 0; u < nUsers; u++ {
		uid := fmt.Sprintf("u%05d", u)
		grp := "a"
		if u%2 == 1 {
			grp = "b"
		}
		for r := 0; r < 2; r++ {
			rows = append(rows, []any{uid, 100 + 5*rng.Gaussian(), float64(rng.Intn(50)), grp})
		}
	}
	var ins InsertRowsResponse
	if code := c.do("POST", "/v1/tenants/"+id+"/tables/metrics/rows", InsertRowsRequest{Rows: rows}, &ins); code != http.StatusOK {
		t.Fatalf("insert: status %d", code)
	}
	if ins.Inserted != len(rows) {
		t.Fatalf("inserted %d of %d", ins.Inserted, len(rows))
	}
}

func TestEndToEndSingleTenant(t *testing.T) {
	srv := New(Options{Seed: 1, Workers: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := newClient(t, ts.URL)
	seedTenant(t, c, "acme", 10, 400)

	var est EstimateResponse
	if code := c.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
		Table: "metrics", Column: "v", Stat: "mean", Epsilon: 1,
	}, &est); code != http.StatusOK {
		t.Fatalf("estimate: status %d", code)
	}
	// ε=1, n=400, σ=5: the release lands near 100 w.h.p.
	if math.Abs(est.Value-100) > 20 {
		t.Errorf("mean release %v, want ~100", est.Value)
	}

	var q QueryResponse
	if code := c.do("POST", "/v1/tenants/acme/query", QueryRequest{
		SQL: "SELECT AVG(v) FROM metrics GROUP BY grp", Epsilon: 2,
	}, &q); code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	if len(q.Rows) != 2 {
		t.Fatalf("got %d groups, want 2", len(q.Rows))
	}

	var st TenantStatus
	if code := c.do("GET", "/v1/tenants/acme", nil, &st); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if math.Abs(st.Spent-3) > 1e-9 {
		t.Errorf("spent %v, want 3", st.Spent)
	}
	if math.Abs(st.Remaining-7) > 1e-9 {
		t.Errorf("remaining %v, want 7", st.Remaining)
	}
}

func TestEstimateStatsAndErrors(t *testing.T) {
	srv := New(Options{Seed: 2, Workers: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := newClient(t, ts.URL)
	seedTenant(t, c, "acme", 1000, 300)

	for _, stat := range []string{"mean", "variance", "stddev", "iqr", "median"} {
		var est EstimateResponse
		if code := c.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
			Table: "metrics", Column: "v", Stat: stat, Epsilon: 1,
		}, &est); code != http.StatusOK {
			t.Errorf("%s: status %d", stat, code)
		}
	}
	var est EstimateResponse
	if code := c.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
		Table: "metrics", Column: "v", Stat: "quantile", P: 0.9, Epsilon: 1,
	}, &est); code != http.StatusOK {
		t.Errorf("quantile: status %d", code)
	}
	// Empirical estimators on the INT column.
	if code := c.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
		Table: "metrics", Column: "n", Stat: "empirical_mean", Epsilon: 1,
	}, &est); code != http.StatusOK {
		t.Errorf("empirical_mean: status %d", code)
	}
	if code := c.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
		Table: "metrics", Column: "n", Stat: "empirical_quantile", Tau: 150, Epsilon: 1,
	}, &est); code != http.StatusOK {
		t.Errorf("empirical_quantile: status %d", code)
	}

	// Error surface: these must not consume budget.
	var before, after TenantStatus
	c.do("GET", "/v1/tenants/acme", nil, &before)
	cases := []struct {
		req  EstimateRequest
		code int
	}{
		{EstimateRequest{Table: "nope", Column: "v", Stat: "mean", Epsilon: 1}, http.StatusNotFound},
		{EstimateRequest{Table: "metrics", Column: "nope", Stat: "mean", Epsilon: 1}, http.StatusNotFound},
		{EstimateRequest{Table: "metrics", Column: "v", Stat: "mode", Epsilon: 1}, http.StatusBadRequest},
		{EstimateRequest{Table: "metrics", Column: "v", Stat: "quantile", P: 1.5, Epsilon: 1}, http.StatusBadRequest},
		{EstimateRequest{Table: "metrics", Column: "uid", Stat: "mean", Epsilon: 1}, http.StatusBadRequest},
		{EstimateRequest{Table: "metrics", Column: "v", Stat: "empirical_mean", Epsilon: 1}, http.StatusBadRequest},
		{EstimateRequest{Table: "metrics", Column: "v", Stat: "mean", Epsilon: -1}, http.StatusBadRequest},
	}
	for i, tc := range cases {
		if code := c.do("POST", "/v1/tenants/acme/estimate", tc.req, nil); code != tc.code {
			t.Errorf("case %d: status %d, want %d", i, code, tc.code)
		}
	}
	c.do("GET", "/v1/tenants/acme", nil, &after)
	if after.Spent != before.Spent {
		t.Errorf("failed validations consumed budget: %v -> %v", before.Spent, after.Spent)
	}
}

// The acceptance scenario: 48 concurrent clients, mixed estimator and SQL
// traffic across two tenants, with exact per-tenant budget enforcement.
// Run under -race.
func TestConcurrentMixedWorkloadBudgetEnforcement(t *testing.T) {
	srv := New(Options{Seed: 3, Workers: 8, QueueDepth: 64})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := newClient(t, ts.URL)

	// Each tenant receives clients/2 = 24 unit-ε releases; acme may afford
	// exactly 15 of its 24, globex has room for every one of its 24.
	const (
		clients      = 48
		acmeAllowed  = 15
		globexBudget = 1000.0
	)
	seedTenant(t, c, "acme", acmeAllowed, 300)
	seedTenant(t, c, "globex", globexBudget, 300)

	type outcome struct {
		ok, refused, other int
	}
	var mu sync.Mutex
	got := map[string]*outcome{"acme": {}, "globex": {}}
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := newClient(t, ts.URL)
			tenant := "acme"
			if i%2 == 1 {
				tenant = "globex"
			}
			// Every request is distinct (per-client WHERE bound / quantile
			// rank) so none is a free cache replay: the test measures the
			// ledger, not the response cache.
			var code int
			if i%4 < 2 { // half SQL, half direct estimator calls
				code = cl.do("POST", "/v1/tenants/"+tenant+"/query", QueryRequest{
					SQL: fmt.Sprintf("SELECT AVG(v) FROM metrics WHERE v < %d", 10000+i), Epsilon: 1,
				}, nil)
			} else {
				code = cl.do("POST", "/v1/tenants/"+tenant+"/estimate", EstimateRequest{
					Table: "metrics", Column: "v", Stat: "quantile",
					P: float64(i+1) / (clients + 2), Epsilon: 1,
				}, nil)
			}
			mu.Lock()
			defer mu.Unlock()
			switch code {
			case http.StatusOK:
				got[tenant].ok++
			case http.StatusTooManyRequests:
				got[tenant].refused++
			default:
				got[tenant].other++
			}
		}(i)
	}
	wg.Wait()

	// acme: exactly acmeAllowed succeed, the rest are budget-refused.
	if got["acme"].ok != acmeAllowed || got["acme"].refused != clients/2-acmeAllowed {
		t.Errorf("acme: ok=%d refused=%d other=%d, want ok=%d refused=%d",
			got["acme"].ok, got["acme"].refused, got["acme"].other,
			acmeAllowed, clients/2-acmeAllowed)
	}
	// globex: everything fits.
	if got["globex"].ok != clients/2 || got["globex"].refused != 0 {
		t.Errorf("globex: ok=%d refused=%d other=%d, want all %d ok",
			got["globex"].ok, got["globex"].refused, got["globex"].other, clients/2)
	}

	// The ledgers agree with the outcomes exactly.
	var acme, globex TenantStatus
	c.do("GET", "/v1/tenants/acme", nil, &acme)
	c.do("GET", "/v1/tenants/globex", nil, &globex)
	if math.Abs(acme.Spent-acmeAllowed) > 1e-9 || acme.Remaining > 1e-9 {
		t.Errorf("acme ledger: spent=%v remaining=%v", acme.Spent, acme.Remaining)
	}
	if math.Abs(globex.Spent-float64(clients/2)) > 1e-9 {
		t.Errorf("globex ledger: spent=%v", globex.Spent)
	}
}

// Ingestion racing queries through the full HTTP stack. Run under -race.
func TestIngestWhileQuerying(t *testing.T) {
	srv := New(Options{Seed: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := newClient(t, ts.URL)
	seedTenant(t, c, "acme", 1e6, 200)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := newClient(t, ts.URL)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				uid := fmt.Sprintf("new-%d-%d", w, i)
				rows := [][]any{{uid, 101.5, 3.0, "a"}}
				if code := cl.do("POST", "/v1/tenants/acme/tables/metrics/rows",
					InsertRowsRequest{Rows: rows}, nil); code != http.StatusOK {
					t.Errorf("insert: status %d", code)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 25; i++ {
		if code := c.do("POST", "/v1/tenants/acme/query", QueryRequest{
			SQL: "SELECT MEDIAN(v) FROM metrics", Epsilon: 1,
		}, nil); code != http.StatusOK {
			t.Errorf("query %d: status %d", i, code)
		}
	}
	close(stop)
	wg.Wait()
}

// Tenants are isolated: a release against one tenant must not move
// another's ledger, and tenant ids must not collide.
func TestTenantIsolation(t *testing.T) {
	srv := New(Options{Seed: 5})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := newClient(t, ts.URL)
	seedTenant(t, c, "a", 10, 100)
	seedTenant(t, c, "b", 10, 100)

	if code := c.do("POST", "/v1/tenants", CreateTenantRequest{ID: "a", Epsilon: 5}, nil); code != http.StatusConflict {
		t.Errorf("duplicate tenant: status %d, want 409", code)
	}
	if code := c.do("POST", "/v1/tenants/a/estimate", EstimateRequest{
		Table: "metrics", Column: "v", Stat: "mean", Epsilon: 2,
	}, nil); code != http.StatusOK {
		t.Fatalf("estimate: status %d", code)
	}
	var a, b TenantStatus
	c.do("GET", "/v1/tenants/a", nil, &a)
	c.do("GET", "/v1/tenants/b", nil, &b)
	if a.Spent != 2 || b.Spent != 0 {
		t.Errorf("isolation broken: a.spent=%v b.spent=%v", a.Spent, b.Spent)
	}
	if code := c.do("GET", "/v1/tenants/missing", nil, nil); code != http.StatusNotFound {
		t.Errorf("missing tenant: status %d", code)
	}
}

// A load-shed estimate (full queue → 503) must not be charged: the spend
// happens on the worker, after the request is accepted.
func TestShedEstimateCostsNoBudget(t *testing.T) {
	srv := New(Options{Seed: 7, Workers: 1, QueueDepth: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := newClient(t, ts.URL)
	seedTenant(t, c, "acme", 10, 100)
	tn, _ := srv.tenantByID("acme")

	// Occupy the single worker, then fill the depth-1 queue, and only
	// send the probe once the queue is verifiably full — otherwise it
	// would be accepted and block instead of shedding.
	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		srv.pool.do(func() { close(started); <-block })
	}()
	<-started
	go func() {
		defer wg.Done()
		srv.pool.do(func() {})
	}()
	for i := 0; len(srv.pool.jobs) < cap(srv.pool.jobs); i++ {
		if i > 1000 {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	spentBefore := tn.led.Spent()
	code := c.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
		Table: "metrics", Column: "v", Stat: "mean", Epsilon: 1,
	}, nil)
	close(block)
	wg.Wait()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("want 503 shed, got %d", code)
	}
	if spent := tn.led.Spent(); spent != spentBefore {
		t.Errorf("shed request was charged: spent %v -> %v", spentBefore, spent)
	}
}

// The /v1/stats counters add up across tenants.
func TestServerStats(t *testing.T) {
	srv := New(Options{Seed: 6})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := newClient(t, ts.URL)
	seedTenant(t, c, "a", 100, 100)

	for i := 0; i < 3; i++ {
		c.do("POST", "/v1/tenants/a/query", QueryRequest{SQL: "SELECT COUNT(*) FROM metrics", Epsilon: 0.1}, nil)
	}
	c.do("POST", "/v1/tenants/a/estimate", EstimateRequest{Table: "metrics", Column: "v", Stat: "mean", Epsilon: 0.5}, nil)

	var st ServerStats
	if code := c.do("GET", "/v1/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if st.Tenants != 1 || st.Queries != 3 || st.Estimates != 1 {
		t.Errorf("stats = %+v", st)
	}
	if code := c.do("GET", "/v1/healthz", nil, nil); code != http.StatusOK {
		t.Errorf("healthz: status %d", code)
	}
}
