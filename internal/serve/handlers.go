package serve

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"

	"repro/internal/dp"
	"repro/internal/dpsql"
	"repro/internal/store"
)

// Handler-level errors. (Wire types, decoding, and validation live in
// decode.go; the estimator dispatch lives in estimate.go.)
var (
	errTenantExists = errors.New("serve: tenant already exists")
	// ErrOverloaded reports a full worker queue (the request was shed).
	ErrOverloaded = errors.New("serve: overloaded, retry later")
)

// ---------- routing ----------

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/tenants", s.handleCreateTenant)
	s.mux.HandleFunc("GET /v1/tenants", s.handleListTenants)
	s.mux.HandleFunc("GET /v1/tenants/{tenant}", s.handleTenantStatus)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/tables", s.handleCreateTable)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/tables/{table}/rows", s.handleInsertRows)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/estimate", s.handleEstimate)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/histogram", s.handleHistogram)
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/audit", s.handleAudit)
	s.mux.HandleFunc("GET /v1/traces", s.handleListTraces)
	s.mux.HandleFunc("GET /v1/traces/{id}", s.handleGetTrace)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.Handle("GET /metrics", s.MetricsHandler())
	s.mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
}

// ---------- tenant lifecycle ----------

func (s *Server) handleCreateTenant(w http.ResponseWriter, r *http.Request) {
	var req CreateTenantRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.ID == "" || strings.ContainsAny(req.ID, "/ \t\n") {
		writeErr(w, http.StatusBadRequest, "bad_tenant_id",
			fmt.Errorf("serve: tenant id %q must be non-empty without slashes or spaces", req.ID))
		return
	}
	t, err := s.createTenant(req)
	if err != nil {
		switch {
		case errors.Is(err, errTenantExists) || errors.Is(err, store.ErrTenantExists):
			writeErr(w, http.StatusConflict, "tenant_exists", err)
		case errors.Is(err, errPersist):
			writeErr(w, http.StatusInternalServerError, "persist_failed", err)
		default:
			writeErr(w, http.StatusBadRequest, "bad_tenant_config", err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, s.status(t))
}

func (s *Server) handleListTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"tenants": s.tenantIDs()})
}

func (s *Server) status(t *Tenant) TenantStatus {
	st := TenantStatus{
		ID:             t.id,
		Accounting:     t.accounting,
		Unit:           string(t.led.Unit()),
		Total:          t.led.Total(),
		Spent:          t.led.Spent(),
		Remaining:      t.led.Remaining(),
		WindowSeconds:  t.windowSecs,
		Shards:         t.shards,
		Queries:        t.queries.Load(),
		Estimates:      t.estimates.Load(),
		Histograms:     t.histograms.Load(),
		Refusals:       t.refusals.Load(),
		CacheHits:      t.cacheHits.Load(),
		CacheMisses:    t.cacheMisses.Load(),
		CacheEvictions: t.cache.evictions(),
		BurnPerSecond:  t.odo.Rate(),
		AuditRecords:   t.audit.Len(),
	}
	// The exhaustion projection is +Inf for an idle tenant; JSON has no
	// spelling for it, so the field is simply omitted until there is a
	// burn rate to project from (the /metrics gauge does render +Inf).
	if tte := t.odo.TimeToExhaustion(t.led.Remaining()); !math.IsInf(tte, 1) {
		st.SecondsToExhaustion = tte
	}
	// The (ε, δ) view: unwrap a windowed decorator to find the backend.
	inner := t.led
	if wl, ok := inner.(*dp.WindowedLedger); ok {
		inner = wl.Inner()
	}
	switch b := inner.(type) {
	case *dp.ZCDPLedger:
		st.Delta = b.Delta()
		st.TotalEpsilon = b.NominalEps()
		st.SpentEpsilon = dp.ZCDPEpsilon(st.Spent, b.Delta())
		if r := st.TotalEpsilon - st.SpentEpsilon; r > 0 {
			st.RemainingEpsilon = r
		}
	case *dp.RDPLedger:
		// The rdp scalar views already ARE the (ε, δ) conversion; the
		// native state is the per-order spend vector.
		st.Delta = b.Delta()
		st.TotalEpsilon, st.SpentEpsilon, st.RemainingEpsilon = st.Total, st.Spent, st.Remaining
		st.Orders = b.Orders()
		st.SpentRDP = b.SpentByOrder()
		st.BestOrder = b.BestOrder()
	default:
		st.TotalEpsilon, st.SpentEpsilon, st.RemainingEpsilon = st.Total, st.Spent, st.Remaining
	}
	return st
}

func (s *Server) handleTenantStatus(w http.ResponseWriter, r *http.Request) {
	t, ok := s.pathTenant(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.status(t))
}

// ---------- schema and ingestion ----------

func (s *Server) handleCreateTable(w http.ResponseWriter, r *http.Request) {
	t, ok := s.pathTenant(w, r)
	if !ok {
		return
	}
	var req CreateTableRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	cols := make([]dpsql.Column, len(req.Columns))
	for i, c := range req.Columns {
		kind, err := decodeColumnKind(c.Kind)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad_kind", err)
			return
		}
		cols[i] = dpsql.Column{Name: c.Name, Kind: kind}
	}
	// DDL takes the EXCLUSIVE persist lock (ingest and releases take the
	// read side): registering the table makes it instantly visible to
	// concurrent inserts, and without exclusion one could log its rows
	// record at a lower seq than this table's DDL record — rows replay
	// would then run before the table exists and silently drop them.
	if t.log != nil {
		t.persistMu.Lock()
		defer t.persistMu.Unlock()
	}
	tab, err := t.db.Create(req.Name, cols, req.UserColumn)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_schema", err)
		return
	}
	if t.log != nil {
		// DDL is synced before the table is acknowledged: an acknowledged
		// schema always recovers. On a persist failure the in-memory table
		// is rolled back too — a ghost that exists in memory but not on
		// disk would 400 every retry and silently drop its replayed rows
		// (no insert can have landed in between: the lock is exclusive).
		// The record carries the table's shard topology for observability;
		// recovery re-derives it from the tenant config.
		st := dpsql.TableState{Name: tab.Name, Columns: cols, UserCol: req.UserColumn}
		if tab.NumShards() > 1 {
			st.Shards = tab.NumShards()
		}
		if err := t.log.AppendTable(st); err != nil {
			t.db.Drop(tab.Name)
			writeErr(w, http.StatusInternalServerError, "persist_failed", err)
			return
		}
	}
	writeJSON(w, http.StatusCreated, map[string]string{"table": req.Name})
}

func (s *Server) handleInsertRows(w http.ResponseWriter, r *http.Request) {
	t, ok := s.pathTenant(w, r)
	if !ok {
		return
	}
	tab, err := t.db.TableByName(r.PathValue("table"))
	if err != nil {
		writeReleaseErr(w, err)
		return
	}
	var req InsertRowsRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	inserted, failure, persistErr := insertBatch(s, t, tab, req.Rows)
	if inserted > 0 {
		s.metrics.ingestRows.Add(int64(inserted))
		// The data version moved: a repeated release is now a genuinely new
		// one and must be charged, so stored replays are stale. This holds
		// even when the batch failed partway or could not be logged — the
		// prefix is in the table either way.
		t.cache.clear()
	}
	// A malformed-batch 400 outranks a persist 500: its body carries the
	// stored-prefix count the client needs to resume precisely, and the
	// fail-stop log guarantees the very next durable operation surfaces
	// the persistence failure anyway.
	if failure != nil {
		writeJSON(w, http.StatusBadRequest, failure)
		return
	}
	if persistErr != nil {
		writeReleaseErr(w, persistErr)
		return
	}
	s.maybeSnapshot(t)
	writeJSON(w, http.StatusOK, InsertRowsResponse{Inserted: inserted})
}

// shardRun is a contiguous run of same-shard rows within one wire batch
// — the unit insertBatch logs. Splitting a batch into runs (rather than
// one record per shard) keeps the WAL's record order equal to arrival
// order: replaying the records back to back reproduces both the
// partitioning AND the global insertion interleaving, so a WAL-tail
// recovery is order-identical to the pre-crash table (record-unit
// releases included), not just user-identical.
type shardRun struct {
	shard int
	rows  [][]dpsql.Value
}

// insertBatch converts and stores a batch of wire rows, logging the
// successfully-inserted prefix — including on partial failure — before
// returning. Rows route to the table's shards by user-id hash (each
// insert takes only its destination shard's lock, so concurrent batches
// for different users stripe instead of serializing), and the log gets
// one shard-tagged record per contiguous same-shard run, in arrival
// order. The persist read lock is held (and released by defer) for the
// whole insert+log pair so it cannot straddle a snapshot capture. Row
// records are buffered, not fsynced: a crash may lose trailing
// ingestion, never recorded spend. An append ERROR is a different class
// from that tolerated loss — the log is fail-stop after it, so
// acknowledging the batch would keep returning 200 for rows that will
// never be durable; it is surfaced as persistErr instead. On a
// malformed row, failure carries the 400 body with the stored-prefix
// count so the client can resume precisely. The two phases are timed
// separately into the ingest stage histogram — "store" (decode + sharded
// insert) and "wal" (the buffered row-record appends) — so an ingest
// cliff is attributable to one of them from /metrics alone.
func insertBatch(s *Server, t *Tenant, tab *dpsql.Table, rows [][]any) (inserted int, failure map[string]any, persistErr error) {
	var stored []shardRun // contiguous same-shard runs, in arrival order
	storeStart := time.Now()
	if t.log != nil {
		t.persistMu.RLock()
		defer t.persistMu.RUnlock()
		defer func() {
			walStart := time.Now()
			defer func() {
				s.metrics.ingestSeconds.With("wal").Observe(time.Since(walStart).Seconds())
			}()
			for _, run := range stored {
				if err := t.log.AppendRows(tab.Name, run.shard, run.rows); err != nil {
					persistErr = fmt.Errorf("%w: recording ingested rows (stored in memory, not durable): %v", errPersist, err)
					return // the log is fail-stop; further appends only repeat the error
				}
			}
		}()
	}
	// LIFO defers: this one runs BEFORE the WAL append above, closing the
	// "store" phase exactly where the "wal" phase begins.
	defer func() {
		s.metrics.ingestSeconds.With("store").Observe(time.Since(storeStart).Seconds())
	}()
	for i, row := range rows {
		vals := make([]dpsql.Value, len(row))
		for j, cell := range row {
			v, err := decodeCell(cell)
			if err != nil {
				return i, map[string]any{
					"error":    fmt.Sprintf("serve: row %d cell %d: %v", i, j, err),
					"code":     "bad_cell",
					"inserted": i,
				}, nil
			}
			vals[j] = v
		}
		si, err := tab.InsertShard(vals...)
		if err != nil {
			return i, map[string]any{
				"error": err.Error(), "code": "bad_row", "inserted": i,
			}, nil
		}
		if t.log != nil {
			if n := len(stored); n > 0 && stored[n-1].shard == si {
				stored[n-1].rows = append(stored[n-1].rows, vals)
			} else {
				stored = append(stored, shardRun{shard: si, rows: [][]dpsql.Value{vals}})
			}
		}
	}
	return len(rows), nil, nil
}

// ---------- releases ----------

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	t, ok := s.pathTenant(w, r)
	if !ok {
		return
	}
	var req QueryRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.ContributionBound < -1 {
		writeErr(w, http.StatusBadRequest, "bad_contribution_bound",
			fmt.Errorf("%w: got %d", dpsql.ErrBadGroupBound, req.ContributionBound))
		return
	}
	// The group_by wire field is sugar for writing GROUP BY in the
	// statement; a query that already has one then fails to parse, which
	// surfaces as a plain 400 before any budget is touched.
	sql := req.SQL
	if req.GroupBy != "" {
		sql = req.SQL + " GROUP BY " + req.GroupBy
	}
	rel := newRelease("query")
	rel.mech = "sql"
	w.Header().Set("X-Release-Id", rel.id)
	s.metrics.releases.With("query").Inc()
	t.queries.Add(1)

	// Byte-identical repeated query: replay the stored answer for free.
	key := fmt.Sprintf("sql|%q|gb=%q|eps=%g|cb=%d", req.SQL, req.GroupBy, req.Epsilon, req.ContributionBound)
	c0 := time.Now()
	hit, cached := t.cache.get(key)
	s.observeStage(rel, "cache_lookup", time.Since(c0))
	if cached {
		s.metrics.cacheHits.Inc()
		t.cacheHits.Add(1)
		out := hit.(QueryResponse)
		out.Cached = true
		writeJSON(w, http.StatusOK, out)
		s.finishRelease(t, rel, http.StatusOK)
		return
	}
	s.metrics.cacheMisses.Inc()
	t.cacheMisses.Add(1)

	// Read the data version before Exec takes its snapshot: if an
	// ingestion lands in between, the stale answer must not be cached.
	ver := t.cache.version()
	var (
		res *dpsql.Result
		err error
	)
	// Exec's table scan fans out over the tenant's shards through the
	// same pool (the fan-out installed at tenant creation), merging the
	// per-shard fragments before the estimators run — one deduction, one
	// mechanism, unchanged noise semantics. The per-release ledger wrap
	// and stage observer thread the release context through Exec: the
	// scan/noise spans and the single deduction land on this release.
	rl := &releaseLedger{inner: t.spender, rel: rel}
	ran, wait := s.pool.doTimed(func() {
		res, err = t.db.ExecTraced(s.splitRNG(), sql, req.Epsilon, dpsql.ExecOpts{
			Ledger:       rl,
			GroupBound:   req.ContributionBound,
			Observe:      func(stage string, d time.Duration) { s.observeStage(rel, stage, d) },
			ObserveShard: shardSpanObserver(rel),
		})
	})
	if !ran {
		s.metrics.shed.Inc()
		s.finishRelease(t, rel, writeReleaseErr(w, ErrOverloaded))
		return
	}
	s.observeStage(rel, "queue_wait", wait)
	if err != nil {
		if errors.Is(err, dp.ErrBudgetExhausted) {
			s.metrics.refusals.Inc()
			t.refusals.Add(1)
		}
		// A charged-then-failed release stays charged, so it must still
		// be audited — the log records spend, not success.
		if rel.spent {
			if aerr := s.auditRelease(t, rel); aerr != nil {
				err = aerr
			}
		}
		s.finishRelease(t, rel, writeReleaseErr(w, err))
		return
	}
	if rel.spent {
		if aerr := s.auditRelease(t, rel); aerr != nil {
			s.finishRelease(t, rel, writeReleaseErr(w, aerr))
			return
		}
	}
	out := QueryResponse{EpsSpent: res.EpsSpent, Rows: make([]QueryResultRow, 0, len(res.Rows))}
	for _, row := range res.Rows {
		qr := QueryResultRow{Values: row.Values}
		if row.HasGroup {
			qr.Group = row.Group.String()
		}
		out.Rows = append(out.Rows, qr)
	}
	t.cache.putAt(key, out, ver)
	s.maybeSnapshot(t)
	writeJSON(w, http.StatusOK, out)
	s.finishRelease(t, rel, http.StatusOK)
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	t, ok := s.pathTenant(w, r)
	if !ok {
		return
	}
	var req EstimateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	// Canonicalize before anything else so spelled-differently-but-equal
	// requests share one cache entry and one validation path.
	canonicalizeEstimate(&req)
	rel := newRelease("estimate")
	rel.mech = req.Stat
	w.Header().Set("X-Release-Id", rel.id)
	s.metrics.releases.With("estimate").Inc()
	t.estimates.Add(1)

	// Byte-identical repeated release: replay the stored answer for free.
	key := estimateCacheKey(req)
	c0 := time.Now()
	hit, cached := t.cache.get(key)
	s.observeStage(rel, "cache_lookup", time.Since(c0))
	if cached {
		s.metrics.cacheHits.Inc()
		t.cacheHits.Add(1)
		out := hit.(EstimateResponse)
		out.Cached = true
		writeJSON(w, http.StatusOK, out)
		s.finishRelease(t, rel, http.StatusOK)
		return
	}
	s.metrics.cacheMisses.Inc()
	t.cacheMisses.Add(1)

	// Read the data version before the release takes its snapshot: if an
	// ingestion lands in between, the stale answer must not be cached.
	ver := t.cache.version()
	value, groups, err := s.estimate(t, req, rel)
	if err != nil {
		if errors.Is(err, dp.ErrBudgetExhausted) {
			s.metrics.refusals.Inc()
			t.refusals.Add(1)
		}
		// A charged-then-failed release stays charged, so it must still
		// be audited — the log records spend, not success.
		if rel.spent {
			if aerr := s.auditRelease(t, rel); aerr != nil {
				err = aerr
			}
		}
		s.finishRelease(t, rel, writeReleaseErr(w, err))
		return
	}
	if rel.spent {
		if aerr := s.auditRelease(t, rel); aerr != nil {
			s.finishRelease(t, rel, writeReleaseErr(w, aerr))
			return
		}
	}
	out := EstimateResponse{Value: value, Groups: groups}
	if req.Rho > 0 {
		out.RhoSpent = req.Rho
	} else {
		out.EpsSpent = req.Epsilon
	}
	t.cache.putAt(key, out, ver)
	s.maybeSnapshot(t)
	writeJSON(w, http.StatusOK, out)
	s.finishRelease(t, rel, http.StatusOK)
}

// handleHistogram releases a count-by-key histogram: one noisy user
// count per group of a public categorical column, executed as a single
// grouped COUNT release — bounded per-user group contributions, one
// parallel-composed deduction, one audit record, cached and charged
// exactly like a query release.
func (s *Server) handleHistogram(w http.ResponseWriter, r *http.Request) {
	t, ok := s.pathTenant(w, r)
	if !ok {
		return
	}
	var req HistogramRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.GroupBy == "" {
		writeErr(w, http.StatusBadRequest, "bad_group_by",
			fmt.Errorf("%w: histogram needs a group_by column", errBadGroupBy))
		return
	}
	if req.ContributionBound < -1 {
		writeErr(w, http.StatusBadRequest, "bad_contribution_bound",
			fmt.Errorf("%w: got %d", dpsql.ErrBadGroupBound, req.ContributionBound))
		return
	}
	rel := newRelease("histogram")
	rel.mech = "histogram"
	w.Header().Set("X-Release-Id", rel.id)
	s.metrics.releases.With("histogram").Inc()
	t.histograms.Add(1)

	// Byte-identical repeated histogram: replay the stored answer for free.
	key := fmt.Sprintf("hist|%q|%q|eps=%g|cb=%d", req.Table, req.GroupBy, req.Epsilon, req.ContributionBound)
	c0 := time.Now()
	hit, cached := t.cache.get(key)
	s.observeStage(rel, "cache_lookup", time.Since(c0))
	if cached {
		s.metrics.cacheHits.Inc()
		t.cacheHits.Add(1)
		out := hit.(HistogramResponse)
		out.Cached = true
		writeJSON(w, http.StatusOK, out)
		s.finishRelease(t, rel, http.StatusOK)
		return
	}
	s.metrics.cacheMisses.Inc()
	t.cacheMisses.Add(1)

	// Read the data version before the scan takes its snapshot: if an
	// ingestion lands in between, the stale answer must not be cached.
	ver := t.cache.version()
	q := &dpsql.Query{
		Table:   req.Table,
		GroupBy: req.GroupBy,
		Aggs:    []dpsql.AggSpec{{Kind: dpsql.AggCount}},
	}
	var (
		res *dpsql.Result
		err error
	)
	rl := &releaseLedger{inner: t.spender, rel: rel}
	ran, wait := s.pool.doTimed(func() {
		res, err = t.db.ExecQueryTraced(s.splitRNG(), q, req.Epsilon, dpsql.ExecOpts{
			Ledger:       rl,
			GroupBound:   req.ContributionBound,
			Observe:      func(stage string, d time.Duration) { s.observeStage(rel, stage, d) },
			ObserveShard: shardSpanObserver(rel),
		})
	})
	if !ran {
		s.metrics.shed.Inc()
		s.finishRelease(t, rel, writeReleaseErr(w, ErrOverloaded))
		return
	}
	s.observeStage(rel, "queue_wait", wait)
	if err != nil {
		if errors.Is(err, dp.ErrBudgetExhausted) {
			s.metrics.refusals.Inc()
			t.refusals.Add(1)
		}
		// A charged-then-failed release stays charged, so it must still
		// be audited — the log records spend, not success.
		if rel.spent {
			if aerr := s.auditRelease(t, rel); aerr != nil {
				err = aerr
			}
		}
		s.finishRelease(t, rel, writeReleaseErr(w, err))
		return
	}
	if rel.spent {
		if aerr := s.auditRelease(t, rel); aerr != nil {
			s.finishRelease(t, rel, writeReleaseErr(w, aerr))
			return
		}
	}
	out := HistogramResponse{EpsSpent: res.EpsSpent, Buckets: make([]HistogramBucket, 0, len(res.Rows))}
	for _, row := range res.Rows {
		out.Buckets = append(out.Buckets, HistogramBucket{Group: row.Group.String(), Count: row.Value})
	}
	t.cache.putAt(key, out, ver)
	s.maybeSnapshot(t)
	writeJSON(w, http.StatusOK, out)
	s.finishRelease(t, rel, http.StatusOK)
}

// ---------- server stats ----------

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	n := len(s.tenants)
	s.mu.RUnlock()
	m := s.metrics
	writeJSON(w, http.StatusOK, ServerStats{
		Tenants:        n,
		Workers:        s.Workers(),
		Queries:        m.releases.With("query").Value(),
		Estimates:      m.releases.With("estimate").Value(),
		Histograms:     m.releases.With("histogram").Value(),
		Refusals:       m.refusals.Value(),
		Shed:           m.shed.Value(),
		CacheHits:      m.cacheHits.Value(),
		CacheMisses:    m.cacheMisses.Value(),
		CacheEvictions: m.cacheEvictions.Value(),
		DataDir:        s.DataDir(),
		UptimeSeconds:  time.Since(s.start).Seconds(),
	})
}
