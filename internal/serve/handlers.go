package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"

	"repro/internal/dp"
	"repro/internal/dpsql"
	"repro/updp"
)

// Handler-level errors.
var (
	errTenantExists = errors.New("serve: tenant already exists")
	// ErrOverloaded reports a full worker queue (the request was shed).
	ErrOverloaded = errors.New("serve: overloaded, retry later")
)

// ---------- wire types ----------

// CreateTenantRequest creates a tenant with a total ε budget.
type CreateTenantRequest struct {
	ID      string  `json:"id"`
	Epsilon float64 `json:"epsilon"`
}

// TenantStatus is the budget and counter view of one tenant.
type TenantStatus struct {
	ID        string  `json:"id"`
	Total     float64 `json:"total_epsilon"`
	Spent     float64 `json:"spent_epsilon"`
	Remaining float64 `json:"remaining_epsilon"`
	Queries   int64   `json:"queries"`
	Estimates int64   `json:"estimates"`
	Refusals  int64   `json:"refusals"`
}

// ColumnSpec is one column in a CreateTableRequest: kind is "float",
// "int", or "string".
type ColumnSpec struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// CreateTableRequest creates a table; UserColumn designates the privacy
// unit.
type CreateTableRequest struct {
	Name       string       `json:"name"`
	Columns    []ColumnSpec `json:"columns"`
	UserColumn string       `json:"user_column"`
}

// InsertRowsRequest appends rows; each row is positional, parallel to the
// table's columns. Numeric cells are JSON numbers, string cells strings.
type InsertRowsRequest struct {
	Rows [][]any `json:"rows"`
}

// InsertRowsResponse reports how many rows were stored.
type InsertRowsResponse struct {
	Inserted int `json:"inserted"`
}

// QueryRequest runs one dpsql SELECT with budget ε.
type QueryRequest struct {
	SQL     string  `json:"sql"`
	Epsilon float64 `json:"epsilon"`
}

// QueryResultRow is one released row.
type QueryResultRow struct {
	Group  string    `json:"group,omitempty"`
	Values []float64 `json:"values"`
}

// QueryResponse is a released SQL answer.
type QueryResponse struct {
	Rows     []QueryResultRow `json:"rows"`
	EpsSpent float64          `json:"eps_spent"`
}

// EstimateRequest runs one estimator release on a column. Stat is one of
// mean, variance, stddev, iqr, median, quantile (with P), empirical_mean,
// empirical_quantile (with Tau). Beta defaults to 0.1.
type EstimateRequest struct {
	Table   string  `json:"table"`
	Column  string  `json:"column"`
	Stat    string  `json:"stat"`
	P       float64 `json:"p,omitempty"`
	Tau     int     `json:"tau,omitempty"`
	Epsilon float64 `json:"epsilon"`
	Beta    float64 `json:"beta,omitempty"`
}

// EstimateResponse is a released estimate.
type EstimateResponse struct {
	Value    float64 `json:"value"`
	EpsSpent float64 `json:"eps_spent"`
}

// ServerStats is the server-wide counter view.
type ServerStats struct {
	Tenants       int     `json:"tenants"`
	Workers       int     `json:"workers"`
	Queries       int64   `json:"queries"`
	Estimates     int64   `json:"estimates"`
	Refusals      int64   `json:"refusals"`
	Shed          int64   `json:"shed"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// ---------- routing ----------

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/tenants", s.handleCreateTenant)
	s.mux.HandleFunc("GET /v1/tenants", s.handleListTenants)
	s.mux.HandleFunc("GET /v1/tenants/{tenant}", s.handleTenantStatus)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/tables", s.handleCreateTable)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/tables/{table}/rows", s.handleInsertRows)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/estimate", s.handleEstimate)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, apiError{Error: err.Error(), Code: code})
}

// writeReleaseErr maps a release error onto the HTTP surface.
func writeReleaseErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, dp.ErrBudgetExhausted):
		writeErr(w, http.StatusTooManyRequests, "budget_exhausted", err)
	case errors.Is(err, ErrOverloaded):
		writeErr(w, http.StatusServiceUnavailable, "overloaded", err)
	case errors.Is(err, dpsql.ErrNoTable), errors.Is(err, dpsql.ErrNoColumn):
		writeErr(w, http.StatusNotFound, "not_found", err)
	case errors.Is(err, dpsql.ErrTooFewUsers), errors.Is(err, updp.ErrTooFewSamples):
		writeErr(w, http.StatusUnprocessableEntity, "too_few_users", err)
	default:
		writeErr(w, http.StatusBadRequest, "bad_request", err)
	}
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_json", fmt.Errorf("serve: decoding body: %w", err))
		return false
	}
	return true
}

// pathTenant resolves the {tenant} path segment, writing 404 on a miss.
func (s *Server) pathTenant(w http.ResponseWriter, r *http.Request) (*Tenant, bool) {
	id := r.PathValue("tenant")
	t, ok := s.tenantByID(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no_tenant", fmt.Errorf("serve: no tenant %q", id))
	}
	return t, ok
}

// ---------- tenant lifecycle ----------

func (s *Server) handleCreateTenant(w http.ResponseWriter, r *http.Request) {
	var req CreateTenantRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.ID == "" || strings.ContainsAny(req.ID, "/ \t\n") {
		writeErr(w, http.StatusBadRequest, "bad_tenant_id",
			fmt.Errorf("serve: tenant id %q must be non-empty without slashes or spaces", req.ID))
		return
	}
	t, err := s.createTenant(req.ID, req.Epsilon)
	if err != nil {
		if errors.Is(err, errTenantExists) {
			writeErr(w, http.StatusConflict, "tenant_exists", err)
			return
		}
		writeErr(w, http.StatusBadRequest, "bad_epsilon", err)
		return
	}
	writeJSON(w, http.StatusCreated, s.status(t))
}

func (s *Server) handleListTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"tenants": s.tenantIDs()})
}

func (s *Server) status(t *Tenant) TenantStatus {
	return TenantStatus{
		ID:        t.id,
		Total:     t.acct.Total(),
		Spent:     t.acct.Spent(),
		Remaining: t.acct.Remaining(),
		Queries:   t.queries.Load(),
		Estimates: t.estimates.Load(),
		Refusals:  t.refusals.Load(),
	}
}

func (s *Server) handleTenantStatus(w http.ResponseWriter, r *http.Request) {
	t, ok := s.pathTenant(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.status(t))
}

// ---------- schema and ingestion ----------

func (s *Server) handleCreateTable(w http.ResponseWriter, r *http.Request) {
	t, ok := s.pathTenant(w, r)
	if !ok {
		return
	}
	var req CreateTableRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	cols := make([]dpsql.Column, len(req.Columns))
	for i, c := range req.Columns {
		var kind dpsql.Kind
		switch strings.ToLower(c.Kind) {
		case "float", "double", "real":
			kind = dpsql.KindFloat
		case "int", "integer", "bigint":
			kind = dpsql.KindInt
		case "string", "text", "varchar":
			kind = dpsql.KindString
		default:
			writeErr(w, http.StatusBadRequest, "bad_kind",
				fmt.Errorf("serve: unknown column kind %q", c.Kind))
			return
		}
		cols[i] = dpsql.Column{Name: c.Name, Kind: kind}
	}
	if _, err := t.db.Create(req.Name, cols, req.UserColumn); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_schema", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"table": req.Name})
}

func (s *Server) handleInsertRows(w http.ResponseWriter, r *http.Request) {
	t, ok := s.pathTenant(w, r)
	if !ok {
		return
	}
	tab, err := t.db.TableByName(r.PathValue("table"))
	if err != nil {
		writeReleaseErr(w, err)
		return
	}
	var req InsertRowsRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	for i, row := range req.Rows {
		vals := make([]dpsql.Value, len(row))
		for j, cell := range row {
			switch c := cell.(type) {
			case float64:
				// JSON numbers decode as float64; Table.Insert converts
				// integral floats into INT columns.
				vals[j] = dpsql.Float(c)
			case string:
				vals[j] = dpsql.Str(c)
			default:
				// Rows before this one are already stored; report the
				// partial count so the client can resume precisely.
				writeJSON(w, http.StatusBadRequest, map[string]any{
					"error":    fmt.Sprintf("serve: row %d cell %d: unsupported JSON type %T", i, j, cell),
					"code":     "bad_cell",
					"inserted": i,
				})
				return
			}
		}
		if err := tab.Insert(vals...); err != nil {
			// Earlier rows of the batch are already stored; report the
			// partial count so the client can resume precisely.
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error": err.Error(), "code": "bad_row", "inserted": i,
			})
			return
		}
	}
	writeJSON(w, http.StatusOK, InsertRowsResponse{Inserted: len(req.Rows)})
}

// ---------- releases ----------

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	t, ok := s.pathTenant(w, r)
	if !ok {
		return
	}
	var req QueryRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	s.queries.Add(1)
	t.queries.Add(1)
	var (
		res *dpsql.Result
		err error
	)
	ran := s.pool.do(func() {
		res, err = t.db.Exec(s.splitRNG(), req.SQL, req.Epsilon)
	})
	if !ran {
		s.shed.Add(1)
		writeReleaseErr(w, ErrOverloaded)
		return
	}
	if err != nil {
		if errors.Is(err, dp.ErrBudgetExhausted) {
			s.refusals.Add(1)
			t.refusals.Add(1)
		}
		writeReleaseErr(w, err)
		return
	}
	out := QueryResponse{EpsSpent: res.EpsSpent, Rows: make([]QueryResultRow, 0, len(res.Rows))}
	for _, row := range res.Rows {
		qr := QueryResultRow{Values: row.Values}
		if row.HasGroup {
			qr.Group = row.Group.String()
		}
		out.Rows = append(out.Rows, qr)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	t, ok := s.pathTenant(w, r)
	if !ok {
		return
	}
	var req EstimateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Beta == 0 {
		req.Beta = 0.1
	}
	s.estimates.Add(1)
	t.estimates.Add(1)
	value, err := s.estimate(t, req)
	if err != nil {
		if errors.Is(err, dp.ErrBudgetExhausted) {
			s.refusals.Add(1)
			t.refusals.Add(1)
		}
		writeReleaseErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, EstimateResponse{Value: value, EpsSpent: req.Epsilon})
}

// estimate validates the request, then hands the whole release — per-user
// collapse, budget deduction, and mechanism — to a worker. Validation
// happens on the handler goroutine so data-independent mistakes (bad stat
// name, unknown table) cost nothing; the table scan and the Spend both
// run inside the pool, so the Workers bound really caps the CPU cost per
// release and a shed request (full queue) is never charged. Once the
// budget is deducted the charge sticks even if the mechanism fails.
func (s *Server) estimate(t *Tenant, req EstimateRequest) (float64, error) {
	tab, err := t.db.TableByName(req.Table)
	if err != nil {
		return 0, err
	}
	switch strings.ToLower(req.Stat) {
	case "mean", "variance", "stddev", "iqr", "median", "empirical_mean":
	case "quantile":
		if !(req.P > 0 && req.P < 1) {
			return 0, fmt.Errorf("%w: got %v", updp.ErrInvalidQuantile, req.P)
		}
	case "empirical_quantile":
		if req.Tau < 1 {
			return 0, fmt.Errorf("serve: empirical_quantile needs tau >= 1, got %d", req.Tau)
		}
	default:
		return 0, fmt.Errorf("serve: unknown stat %q", req.Stat)
	}

	var value float64
	var runErr error
	ran := s.pool.do(func() { value, runErr = s.runEstimate(t, tab, req) })
	if !ran {
		s.shed.Add(1)
		return 0, ErrOverloaded
	}
	return value, runErr
}

// runEstimate executes one estimator release on a worker goroutine.
func (s *Server) runEstimate(t *Tenant, tab *dpsql.Table, req EstimateRequest) (float64, error) {
	stat := strings.ToLower(req.Stat)

	// Pull the per-user contributions (a consistent snapshot).
	var (
		xs  []float64
		zs  []int64
		err error
	)
	if stat == "empirical_mean" || stat == "empirical_quantile" {
		zs, err = tab.UserIntSums(req.Column)
	} else {
		xs, err = tab.UserMeans(req.Column)
	}
	if err != nil {
		return 0, err
	}

	// Atomically reserve the budget, then release.
	if err := t.acct.Spend(req.Epsilon); err != nil {
		return 0, err
	}
	o := []updp.Option{updp.WithBeta(req.Beta), updp.WithSeed(s.splitRNG().Uint64())}
	var value float64
	switch stat {
	case "mean":
		value, err = updp.Mean(xs, req.Epsilon, o...)
	case "variance":
		// Scale parameters are non-negative; projecting the raw release
		// onto [0, ∞) is free post-processing (as the SQL path does).
		value, err = clampNonNeg(updp.Variance(xs, req.Epsilon, o...))
	case "stddev":
		value, err = updp.StdDev(xs, req.Epsilon, o...)
	case "iqr":
		value, err = clampNonNeg(updp.IQR(xs, req.Epsilon, o...))
	case "median":
		value, err = updp.Median(xs, req.Epsilon, o...)
	case "quantile":
		value, err = updp.Quantile(xs, req.P, req.Epsilon, o...)
	case "empirical_mean":
		value, err = updp.EmpiricalMean(zs, req.Epsilon, o...)
	case "empirical_quantile":
		var v int64
		v, err = updp.EmpiricalQuantile(zs, req.Tau, req.Epsilon, o...)
		value = float64(v)
	}
	if err != nil {
		return 0, err
	}
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return 0, fmt.Errorf("serve: mechanism produced non-finite value")
	}
	return value, nil
}

// clampNonNeg projects a scale release onto [0, ∞), passing errors through.
func clampNonNeg(v float64, err error) (float64, error) {
	if err == nil && v < 0 {
		v = 0
	}
	return v, err
}

// ---------- server stats ----------

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	n := len(s.tenants)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, ServerStats{
		Tenants:       n,
		Workers:       s.Workers(),
		Queries:       s.queries.Load(),
		Estimates:     s.estimates.Load(),
		Refusals:      s.refusals.Load(),
		Shed:          s.shed.Load(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}
