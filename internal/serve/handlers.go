package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"

	"repro/internal/dp"
	"repro/internal/dpsql"
	"repro/internal/store"
	"repro/updp"
)

// Handler-level errors.
var (
	errTenantExists = errors.New("serve: tenant already exists")
	// ErrOverloaded reports a full worker queue (the request was shed).
	ErrOverloaded = errors.New("serve: overloaded, retry later")
)

// ---------- wire types ----------

// CreateTenantRequest creates a tenant with a nominal budget and a
// composition backend. Accounting picks the backend: "pure" (default,
// basic composition of pure ε) or "zcdp" (ρ-accounting at an (ε, δ)
// target; Delta defaults to 1e-6 and every pure release is priced at
// ε²/2). WindowSeconds > 0 additionally makes the budget renewable: it
// refills to full every WindowSeconds of wall-clock time.
type CreateTenantRequest struct {
	ID            string  `json:"id"`
	Epsilon       float64 `json:"epsilon"`
	Accounting    string  `json:"accounting,omitempty"`
	Delta         float64 `json:"delta,omitempty"`
	WindowSeconds float64 `json:"window_seconds,omitempty"`
}

// TenantStatus is the budget and counter view of one tenant. Total,
// Spent, and Remaining are in the backend's native unit (Unit: "eps" for
// pure tenants, "rho" for zcdp); the *_epsilon fields are the (ε, δ)-DP
// view — for pure tenants they mirror the native numbers, for zcdp
// tenants spent_epsilon is the ρ→(ε, δ) conversion of the spend at the
// tenant's δ. For windowed tenants the spend is within the current
// window.
type TenantStatus struct {
	ID         string  `json:"id"`
	Accounting string  `json:"accounting"`
	Unit       string  `json:"unit"`
	Total      float64 `json:"total"`
	Spent      float64 `json:"spent"`
	Remaining  float64 `json:"remaining"`

	TotalEpsilon     float64 `json:"total_epsilon"`
	SpentEpsilon     float64 `json:"spent_epsilon"`
	RemainingEpsilon float64 `json:"remaining_epsilon"`
	Delta            float64 `json:"delta,omitempty"`
	WindowSeconds    float64 `json:"window_seconds,omitempty"`

	Queries        int64 `json:"queries"`
	Estimates      int64 `json:"estimates"`
	Refusals       int64 `json:"refusals"`
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEvictions int64 `json:"cache_evictions"`
}

// ColumnSpec is one column in a CreateTableRequest: kind is "float",
// "int", or "string".
type ColumnSpec struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// CreateTableRequest creates a table; UserColumn designates the privacy
// unit.
type CreateTableRequest struct {
	Name       string       `json:"name"`
	Columns    []ColumnSpec `json:"columns"`
	UserColumn string       `json:"user_column"`
}

// InsertRowsRequest appends rows; each row is positional, parallel to the
// table's columns. Numeric cells are JSON numbers, string cells strings.
type InsertRowsRequest struct {
	Rows [][]any `json:"rows"`
}

// InsertRowsResponse reports how many rows were stored.
type InsertRowsResponse struct {
	Inserted int `json:"inserted"`
}

// QueryRequest runs one dpsql SELECT with budget ε.
type QueryRequest struct {
	SQL     string  `json:"sql"`
	Epsilon float64 `json:"epsilon"`
}

// QueryResultRow is one released row.
type QueryResultRow struct {
	Group  string    `json:"group,omitempty"`
	Values []float64 `json:"values"`
}

// QueryResponse is a released SQL answer. Cached reports a replay of a
// byte-identical earlier release (free — no budget was spent on it).
type QueryResponse struct {
	Rows     []QueryResultRow `json:"rows"`
	EpsSpent float64          `json:"eps_spent"`
	Cached   bool             `json:"cached,omitempty"`
}

// EstimateRequest runs one estimator release on a column. Stat is one of
// mean, variance, stddev, iqr, median, quantile (with P), count,
// empirical_mean, empirical_quantile (with Tau). Beta defaults to 0.1.
// Count privatizes the number of privacy units alone and ignores Column.
//
// Unit picks the privacy unit: "user" (default) collapses rows to one
// contribution per user first; "record" skips the collapse for datasets
// where a row IS a user (record-level DP — weaker when users own several
// rows, exact when they don't).
//
// Rho, valid for stat "count" only, releases the count through the
// Gaussian mechanism charged natively in zCDP ρ instead of ε — a zcdp
// tenant's cheapest way to count; a pure tenant refuses it (the Gaussian
// mechanism has no finite pure-ε guarantee). Set either Epsilon or Rho,
// not both.
type EstimateRequest struct {
	Table   string  `json:"table"`
	Column  string  `json:"column"`
	Stat    string  `json:"stat"`
	P       float64 `json:"p,omitempty"`
	Tau     int     `json:"tau,omitempty"`
	Epsilon float64 `json:"epsilon,omitempty"`
	Rho     float64 `json:"rho,omitempty"`
	Beta    float64 `json:"beta,omitempty"`
	Unit    string  `json:"unit,omitempty"`
}

// EstimateResponse is a released estimate; exactly one of EpsSpent and
// RhoSpent is set, matching how the release was charged. Cached reports a
// replay of a byte-identical earlier release (free post-processing — no
// budget was spent on this response).
type EstimateResponse struct {
	Value    float64 `json:"value"`
	EpsSpent float64 `json:"eps_spent,omitempty"`
	RhoSpent float64 `json:"rho_spent,omitempty"`
	Cached   bool    `json:"cached,omitempty"`
}

// ServerStats is the server-wide counter view. CacheEvictions counts LRU
// evictions across every tenant's response cache; DataDir names the
// durable store's directory (empty for in-memory servers).
type ServerStats struct {
	Tenants        int     `json:"tenants"`
	Workers        int     `json:"workers"`
	Queries        int64   `json:"queries"`
	Estimates      int64   `json:"estimates"`
	Refusals       int64   `json:"refusals"`
	Shed           int64   `json:"shed"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheEvictions int64   `json:"cache_evictions"`
	DataDir        string  `json:"data_dir,omitempty"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// ---------- routing ----------

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/tenants", s.handleCreateTenant)
	s.mux.HandleFunc("GET /v1/tenants", s.handleListTenants)
	s.mux.HandleFunc("GET /v1/tenants/{tenant}", s.handleTenantStatus)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/tables", s.handleCreateTable)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/tables/{table}/rows", s.handleInsertRows)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/estimate", s.handleEstimate)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, apiError{Error: err.Error(), Code: code})
}

// writeReleaseErr maps a release error onto the HTTP surface.
func writeReleaseErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, dp.ErrBudgetExhausted):
		writeErr(w, http.StatusTooManyRequests, "budget_exhausted", err)
	case errors.Is(err, errPersist):
		writeErr(w, http.StatusInternalServerError, "persist_failed", err)
	case errors.Is(err, dp.ErrUnsupportedCost):
		writeErr(w, http.StatusBadRequest, "unsupported_cost", err)
	case errors.Is(err, ErrOverloaded):
		writeErr(w, http.StatusServiceUnavailable, "overloaded", err)
	case errors.Is(err, dpsql.ErrNoTable), errors.Is(err, dpsql.ErrNoColumn):
		writeErr(w, http.StatusNotFound, "not_found", err)
	case errors.Is(err, dpsql.ErrTooFewUsers), errors.Is(err, updp.ErrTooFewSamples):
		writeErr(w, http.StatusUnprocessableEntity, "too_few_users", err)
	default:
		writeErr(w, http.StatusBadRequest, "bad_request", err)
	}
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_json", fmt.Errorf("serve: decoding body: %w", err))
		return false
	}
	return true
}

// pathTenant resolves the {tenant} path segment, writing 404 on a miss.
func (s *Server) pathTenant(w http.ResponseWriter, r *http.Request) (*Tenant, bool) {
	id := r.PathValue("tenant")
	t, ok := s.tenantByID(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no_tenant", fmt.Errorf("serve: no tenant %q", id))
	}
	return t, ok
}

// ---------- tenant lifecycle ----------

func (s *Server) handleCreateTenant(w http.ResponseWriter, r *http.Request) {
	var req CreateTenantRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.ID == "" || strings.ContainsAny(req.ID, "/ \t\n") {
		writeErr(w, http.StatusBadRequest, "bad_tenant_id",
			fmt.Errorf("serve: tenant id %q must be non-empty without slashes or spaces", req.ID))
		return
	}
	t, err := s.createTenant(req)
	if err != nil {
		switch {
		case errors.Is(err, errTenantExists) || errors.Is(err, store.ErrTenantExists):
			writeErr(w, http.StatusConflict, "tenant_exists", err)
		case errors.Is(err, errPersist):
			writeErr(w, http.StatusInternalServerError, "persist_failed", err)
		default:
			writeErr(w, http.StatusBadRequest, "bad_tenant_config", err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, s.status(t))
}

func (s *Server) handleListTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"tenants": s.tenantIDs()})
}

func (s *Server) status(t *Tenant) TenantStatus {
	st := TenantStatus{
		ID:             t.id,
		Accounting:     t.accounting,
		Unit:           string(t.led.Unit()),
		Total:          t.led.Total(),
		Spent:          t.led.Spent(),
		Remaining:      t.led.Remaining(),
		WindowSeconds:  t.windowSecs,
		Queries:        t.queries.Load(),
		Estimates:      t.estimates.Load(),
		Refusals:       t.refusals.Load(),
		CacheHits:      t.cacheHits.Load(),
		CacheMisses:    t.cacheMisses.Load(),
		CacheEvictions: t.cache.evictions(),
	}
	// The (ε, δ) view: unwrap a windowed decorator to find the backend.
	inner := t.led
	if wl, ok := inner.(*dp.WindowedLedger); ok {
		inner = wl.Inner()
	}
	if z, ok := inner.(*dp.ZCDPLedger); ok {
		st.Delta = z.Delta()
		st.TotalEpsilon = z.NominalEps()
		st.SpentEpsilon = dp.ZCDPEpsilon(st.Spent, z.Delta())
		if r := st.TotalEpsilon - st.SpentEpsilon; r > 0 {
			st.RemainingEpsilon = r
		}
	} else {
		st.TotalEpsilon, st.SpentEpsilon, st.RemainingEpsilon = st.Total, st.Spent, st.Remaining
	}
	return st
}

func (s *Server) handleTenantStatus(w http.ResponseWriter, r *http.Request) {
	t, ok := s.pathTenant(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.status(t))
}

// ---------- schema and ingestion ----------

func (s *Server) handleCreateTable(w http.ResponseWriter, r *http.Request) {
	t, ok := s.pathTenant(w, r)
	if !ok {
		return
	}
	var req CreateTableRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	cols := make([]dpsql.Column, len(req.Columns))
	for i, c := range req.Columns {
		var kind dpsql.Kind
		switch strings.ToLower(c.Kind) {
		case "float", "double", "real":
			kind = dpsql.KindFloat
		case "int", "integer", "bigint":
			kind = dpsql.KindInt
		case "string", "text", "varchar":
			kind = dpsql.KindString
		default:
			writeErr(w, http.StatusBadRequest, "bad_kind",
				fmt.Errorf("serve: unknown column kind %q", c.Kind))
			return
		}
		cols[i] = dpsql.Column{Name: c.Name, Kind: kind}
	}
	// DDL takes the EXCLUSIVE persist lock (ingest and releases take the
	// read side): registering the table makes it instantly visible to
	// concurrent inserts, and without exclusion one could log its rows
	// record at a lower seq than this table's DDL record — rows replay
	// would then run before the table exists and silently drop them.
	if t.log != nil {
		t.persistMu.Lock()
		defer t.persistMu.Unlock()
	}
	tab, err := t.db.Create(req.Name, cols, req.UserColumn)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_schema", err)
		return
	}
	if t.log != nil {
		// DDL is synced before the table is acknowledged: an acknowledged
		// schema always recovers. On a persist failure the in-memory table
		// is rolled back too — a ghost that exists in memory but not on
		// disk would 400 every retry and silently drop its replayed rows
		// (no insert can have landed in between: the lock is exclusive).
		if err := t.log.AppendTable(dpsql.TableState{Name: tab.Name, Columns: cols, UserCol: req.UserColumn}); err != nil {
			t.db.Drop(tab.Name)
			writeErr(w, http.StatusInternalServerError, "persist_failed", err)
			return
		}
	}
	writeJSON(w, http.StatusCreated, map[string]string{"table": req.Name})
}

func (s *Server) handleInsertRows(w http.ResponseWriter, r *http.Request) {
	t, ok := s.pathTenant(w, r)
	if !ok {
		return
	}
	tab, err := t.db.TableByName(r.PathValue("table"))
	if err != nil {
		writeReleaseErr(w, err)
		return
	}
	var req InsertRowsRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	inserted, failure, persistErr := insertBatch(t, tab, req.Rows)
	if inserted > 0 {
		// The data version moved: a repeated release is now a genuinely new
		// one and must be charged, so stored replays are stale. This holds
		// even when the batch failed partway or could not be logged — the
		// prefix is in the table either way.
		t.cache.clear()
	}
	// A malformed-batch 400 outranks a persist 500: its body carries the
	// stored-prefix count the client needs to resume precisely, and the
	// fail-stop log guarantees the very next durable operation surfaces
	// the persistence failure anyway.
	if failure != nil {
		writeJSON(w, http.StatusBadRequest, failure)
		return
	}
	if persistErr != nil {
		writeReleaseErr(w, persistErr)
		return
	}
	s.maybeSnapshot(t)
	writeJSON(w, http.StatusOK, InsertRowsResponse{Inserted: inserted})
}

// insertBatch converts and stores a batch of wire rows, logging the
// successfully-inserted prefix — including on partial failure — before
// returning. The persist read lock is held (and released by defer) for
// the whole insert+log pair so it cannot straddle a snapshot capture.
// Row records are buffered, not fsynced: a crash may lose trailing
// ingestion, never recorded spend. An append ERROR is a different class
// from that tolerated loss — the log is fail-stop after it, so
// acknowledging the batch would keep returning 200 for rows that will
// never be durable; it is surfaced as persistErr instead. On a malformed
// row, failure carries the 400 body with the stored-prefix count so the
// client can resume precisely.
func insertBatch(t *Tenant, tab *dpsql.Table, rows [][]any) (inserted int, failure map[string]any, persistErr error) {
	var stored [][]dpsql.Value
	if t.log != nil {
		t.persistMu.RLock()
		defer t.persistMu.RUnlock()
		stored = make([][]dpsql.Value, 0, len(rows))
		defer func() {
			if err := t.log.AppendRows(tab.Name, stored); err != nil {
				persistErr = fmt.Errorf("%w: recording ingested rows (stored in memory, not durable): %v", errPersist, err)
			}
		}()
	}
	for i, row := range rows {
		vals := make([]dpsql.Value, len(row))
		for j, cell := range row {
			switch c := cell.(type) {
			case float64:
				// JSON numbers decode as float64; Table.Insert converts
				// integral floats into INT columns.
				vals[j] = dpsql.Float(c)
			case string:
				vals[j] = dpsql.Str(c)
			default:
				return i, map[string]any{
					"error":    fmt.Sprintf("serve: row %d cell %d: unsupported JSON type %T", i, j, cell),
					"code":     "bad_cell",
					"inserted": i,
				}, nil
			}
		}
		if err := tab.Insert(vals...); err != nil {
			return i, map[string]any{
				"error": err.Error(), "code": "bad_row", "inserted": i,
			}, nil
		}
		if t.log != nil {
			stored = append(stored, vals)
		}
	}
	return len(rows), nil, nil
}

// ---------- releases ----------

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	t, ok := s.pathTenant(w, r)
	if !ok {
		return
	}
	var req QueryRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	s.queries.Add(1)
	t.queries.Add(1)

	// Byte-identical repeated query: replay the stored answer for free.
	key := fmt.Sprintf("sql|%q|eps=%g", req.SQL, req.Epsilon)
	if hit, ok := t.cache.get(key); ok {
		s.cacheHits.Add(1)
		t.cacheHits.Add(1)
		out := hit.(QueryResponse)
		out.Cached = true
		writeJSON(w, http.StatusOK, out)
		return
	}
	s.cacheMisses.Add(1)
	t.cacheMisses.Add(1)

	// Read the data version before Exec takes its snapshot: if an
	// ingestion lands in between, the stale answer must not be cached.
	ver := t.cache.version()
	var (
		res *dpsql.Result
		err error
	)
	ran := s.pool.do(func() {
		res, err = t.db.Exec(s.splitRNG(), req.SQL, req.Epsilon)
	})
	if !ran {
		s.shed.Add(1)
		writeReleaseErr(w, ErrOverloaded)
		return
	}
	if err != nil {
		if errors.Is(err, dp.ErrBudgetExhausted) {
			s.refusals.Add(1)
			t.refusals.Add(1)
		}
		writeReleaseErr(w, err)
		return
	}
	out := QueryResponse{EpsSpent: res.EpsSpent, Rows: make([]QueryResultRow, 0, len(res.Rows))}
	for _, row := range res.Rows {
		qr := QueryResultRow{Values: row.Values}
		if row.HasGroup {
			qr.Group = row.Group.String()
		}
		out.Rows = append(out.Rows, qr)
	}
	t.cache.putAt(key, out, ver)
	s.maybeSnapshot(t)
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	t, ok := s.pathTenant(w, r)
	if !ok {
		return
	}
	var req EstimateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	// Canonicalize before anything else so spelled-differently-but-equal
	// requests share one cache entry and one validation path.
	req.Stat = strings.ToLower(req.Stat)
	req.Unit = strings.ToLower(req.Unit)
	if req.Unit == "" {
		req.Unit = "user"
	}
	if req.Beta == 0 {
		req.Beta = 0.1
	}
	// Fields a stat ignores must not split the cache into separately-
	// charged entries for semantically identical requests.
	if req.Stat != "quantile" {
		req.P = 0
	}
	if req.Stat != "empirical_quantile" {
		req.Tau = 0
	}
	if req.Stat == "count" {
		// Count privatizes the unit count alone: no column, no utility
		// parameter.
		req.Column = ""
		req.Beta = 0
	}
	s.estimates.Add(1)
	t.estimates.Add(1)

	// Byte-identical repeated release: replay the stored answer for free.
	// Names are %q-quoted so crafted table/column strings cannot collide
	// across field boundaries.
	key := fmt.Sprintf("est|%q|%q|%s|p=%g|tau=%d|eps=%g|rho=%g|beta=%g|unit=%s",
		strings.ToLower(req.Table), strings.ToLower(req.Column), req.Stat,
		req.P, req.Tau, req.Epsilon, req.Rho, req.Beta, req.Unit)
	if hit, ok := t.cache.get(key); ok {
		s.cacheHits.Add(1)
		t.cacheHits.Add(1)
		out := hit.(EstimateResponse)
		out.Cached = true
		writeJSON(w, http.StatusOK, out)
		return
	}
	s.cacheMisses.Add(1)
	t.cacheMisses.Add(1)

	// Read the data version before the release takes its snapshot: if an
	// ingestion lands in between, the stale answer must not be cached.
	ver := t.cache.version()
	value, err := s.estimate(t, req)
	if err != nil {
		if errors.Is(err, dp.ErrBudgetExhausted) {
			s.refusals.Add(1)
			t.refusals.Add(1)
		}
		writeReleaseErr(w, err)
		return
	}
	out := EstimateResponse{Value: value}
	if req.Rho > 0 {
		out.RhoSpent = req.Rho
	} else {
		out.EpsSpent = req.Epsilon
	}
	t.cache.putAt(key, out, ver)
	s.maybeSnapshot(t)
	writeJSON(w, http.StatusOK, out)
}

// estimate validates the request, then hands the whole release — unit
// collapse, budget deduction, and mechanism — to a worker. Validation
// happens on the handler goroutine so data-independent mistakes (bad stat
// name, unknown table) cost nothing; the table scan and the Spend both
// run inside the pool, so the Workers bound really caps the CPU cost per
// release and a shed request (full queue) is never charged. Once the
// budget is deducted the charge sticks even if the mechanism fails.
// The request is already canonicalized (stat/unit lower-cased, defaults
// applied) by the handler.
func (s *Server) estimate(t *Tenant, req EstimateRequest) (float64, error) {
	tab, err := t.db.TableByName(req.Table)
	if err != nil {
		return 0, err
	}
	switch req.Unit {
	case "user", "record":
	default:
		return 0, fmt.Errorf("serve: unknown privacy unit %q (want \"user\" or \"record\")", req.Unit)
	}
	switch req.Stat {
	case "mean", "variance", "stddev", "iqr", "median", "empirical_mean", "count":
	case "quantile":
		if !(req.P > 0 && req.P < 1) {
			return 0, fmt.Errorf("%w: got %v", updp.ErrInvalidQuantile, req.P)
		}
	case "empirical_quantile":
		if req.Tau < 1 {
			return 0, fmt.Errorf("serve: empirical_quantile needs tau >= 1, got %d", req.Tau)
		}
	default:
		return 0, fmt.Errorf("serve: unknown stat %q", req.Stat)
	}
	if req.Rho != 0 {
		// Native zCDP charging exists exactly for the Gaussian mechanism,
		// which serves the sensitivity-1 count; the universal estimators
		// are pure-DP constructions and always charge ε.
		if req.Stat != "count" {
			return 0, fmt.Errorf("serve: rho charging supports stat \"count\" only, got %q", req.Stat)
		}
		if req.Epsilon != 0 {
			return 0, fmt.Errorf("serve: set either epsilon or rho, not both")
		}
		if err := dp.CheckRho(req.Rho); err != nil {
			return 0, err
		}
	}

	var value float64
	var runErr error
	ran := s.pool.do(func() { value, runErr = s.runEstimate(t, tab, req) })
	if !ran {
		s.shed.Add(1)
		return 0, ErrOverloaded
	}
	return value, runErr
}

// runEstimate executes one estimator release on a worker goroutine.
func (s *Server) runEstimate(t *Tenant, tab *dpsql.Table, req EstimateRequest) (float64, error) {
	stat := req.Stat
	empiricalStat := stat == "empirical_mean" || stat == "empirical_quantile"

	// Pull the contributions (a consistent snapshot): one value per user
	// (the shared replace-one-user reduction), or the raw rows when the
	// request says a row IS a user. Count needs only the unit count — no
	// column read, no per-user numeric collapse.
	var (
		n   int
		xs  []float64
		zs  []int64
		err error
	)
	switch {
	case stat == "count" && req.Unit == "record":
		n = tab.NumRows()
	case stat == "count":
		n = tab.NumUsers()
	case empiricalStat && req.Unit == "record":
		zs, err = tab.ColumnInts(req.Column)
	case empiricalStat:
		zs, err = tab.UserIntSums(req.Column)
	case req.Unit == "record":
		xs, err = tab.ColumnFloats(req.Column)
	default:
		xs, err = tab.UserMeans(req.Column)
	}
	if err != nil {
		return 0, err
	}

	// Atomically reserve the budget in the cost's native unit, then
	// release. The tenant's ledger decides whether the cost is affordable
	// — or even representable (a pure-ε ledger refuses native-ρ costs).
	cost := dp.EpsCost(req.Epsilon)
	if req.Rho > 0 {
		cost = dp.RhoCost(req.Rho)
	}
	// t.spender is the WAL-interposed view on a durable server: the
	// deduction is on disk before the mechanism may run.
	if err := t.spender.Spend(cost); err != nil {
		return 0, err
	}
	o := []updp.Option{updp.WithBeta(req.Beta), updp.WithSeed(s.splitRNG().Uint64())}
	var value float64
	switch stat {
	case "count":
		// Unit count (sensitivity 1 under one-unit change): Laplace when
		// charged in ε, Gaussian — the natively-zCDP mechanism — in ρ.
		if req.Rho > 0 {
			value = dp.Gaussian(s.splitRNG(), float64(n), 1, req.Rho)
		} else {
			value = dp.NoisyCount(s.splitRNG(), n, req.Epsilon)
		}
	case "mean":
		value, err = updp.Mean(xs, req.Epsilon, o...)
	case "variance":
		// Scale parameters are non-negative; projecting the raw release
		// onto [0, ∞) is free post-processing (as the SQL path does).
		value, err = clampNonNeg(updp.Variance(xs, req.Epsilon, o...))
	case "stddev":
		value, err = updp.StdDev(xs, req.Epsilon, o...)
	case "iqr":
		value, err = clampNonNeg(updp.IQR(xs, req.Epsilon, o...))
	case "median":
		value, err = updp.Median(xs, req.Epsilon, o...)
	case "quantile":
		value, err = updp.Quantile(xs, req.P, req.Epsilon, o...)
	case "empirical_mean":
		value, err = updp.EmpiricalMean(zs, req.Epsilon, o...)
	case "empirical_quantile":
		var v int64
		v, err = updp.EmpiricalQuantile(zs, req.Tau, req.Epsilon, o...)
		value = float64(v)
	}
	if err != nil {
		return 0, err
	}
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return 0, fmt.Errorf("serve: mechanism produced non-finite value")
	}
	return value, nil
}

// clampNonNeg projects a scale release onto [0, ∞), passing errors through.
func clampNonNeg(v float64, err error) (float64, error) {
	if err == nil && v < 0 {
		v = 0
	}
	return v, err
}

// ---------- server stats ----------

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	n := len(s.tenants)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, ServerStats{
		Tenants:        n,
		Workers:        s.Workers(),
		Queries:        s.queries.Load(),
		Estimates:      s.estimates.Load(),
		Refusals:       s.refusals.Load(),
		Shed:           s.shed.Load(),
		CacheHits:      s.cacheHits.Load(),
		CacheMisses:    s.cacheMisses.Load(),
		CacheEvictions: s.cacheEvictions.Load(),
		DataDir:        s.DataDir(),
		UptimeSeconds:  time.Since(s.start).Seconds(),
	})
}
