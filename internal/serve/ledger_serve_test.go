package serve

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/dp"
)

// ---------- accounting backends over the wire ----------

func TestCreateTenantAccountingConfig(t *testing.T) {
	srv := New(Options{Seed: 11})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := newClient(t, ts.URL)

	var st TenantStatus
	if code := c.do("POST", "/v1/tenants", CreateTenantRequest{
		ID: "z", Epsilon: 1, Accounting: "zcdp",
	}, &st); code != http.StatusCreated {
		t.Fatalf("create zcdp tenant: status %d", code)
	}
	if st.Accounting != "zcdp" || st.Unit != "rho" {
		t.Errorf("status accounting/unit = %q/%q, want zcdp/rho", st.Accounting, st.Unit)
	}
	if st.Delta != 1e-6 {
		t.Errorf("default delta = %v, want 1e-6", st.Delta)
	}
	if want := dp.ZCDPRho(1, 1e-6); math.Abs(st.Total-want) > 1e-12 {
		t.Errorf("total rho = %v, want %v", st.Total, want)
	}
	if st.TotalEpsilon != 1 {
		t.Errorf("total_epsilon = %v, want nominal 1", st.TotalEpsilon)
	}

	if code := c.do("POST", "/v1/tenants", CreateTenantRequest{
		ID: "p", Epsilon: 1, Accounting: "pure",
	}, &st); code != http.StatusCreated {
		t.Fatalf("create pure tenant: status %d", code)
	}
	if st.Accounting != "pure" || st.Unit != "eps" || st.Total != 1 || st.TotalEpsilon != 1 {
		t.Errorf("pure status = %+v", st)
	}

	// Config mistakes are refused.
	for i, bad := range []CreateTenantRequest{
		{ID: "x1", Epsilon: 1, Accounting: "renyi"},
		{ID: "x2", Epsilon: 1, Accounting: "zcdp", Delta: 2},
		{ID: "x3", Epsilon: 1, Delta: 1e-6}, // delta on a pure tenant
		{ID: "x4", Epsilon: 1, WindowSeconds: -5},
		{ID: "x5", Epsilon: -1, Accounting: "zcdp"},
	} {
		if code := c.do("POST", "/v1/tenants", bad, nil); code != http.StatusBadRequest {
			t.Errorf("bad config %d: status %d, want 400", i, code)
		}
	}
}

// The headline property: with the same nominal (ε, δ) budget, a zCDP
// tenant sustains at least 2x the successful small releases of a pure-ε
// twin before hitting 429 (quadratic vs linear composition).
func TestZCDPTenantSustainsTwiceThePureReleases(t *testing.T) {
	srv := New(Options{Seed: 12, Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := newClient(t, ts.URL)

	const (
		nominalEps = 0.5
		releaseEps = 0.005
		maxTries   = 1000
	)
	seedTenant(t, c, "pure-twin", nominalEps, 120)
	if code := c.do("POST", "/v1/tenants", CreateTenantRequest{
		ID: "zcdp-twin", Epsilon: nominalEps, Accounting: "zcdp", Delta: 1e-6,
	}, nil); code != http.StatusCreated {
		t.Fatalf("create zcdp twin: status %d", code)
	}
	// Same table, same data as the pure twin.
	seedTables(t, c, "zcdp-twin", 120)

	sustained := func(tenant string) int {
		for i := 0; i < maxTries; i++ {
			// Distinct quantile ranks so no release is a free cache replay.
			p := 0.01 + 0.98*float64(i)/maxTries
			code := c.do("POST", "/v1/tenants/"+tenant+"/estimate", EstimateRequest{
				Table: "metrics", Column: "v", Stat: "quantile", P: p, Epsilon: releaseEps,
			}, nil)
			switch code {
			case http.StatusOK:
			case http.StatusTooManyRequests:
				return i
			default:
				t.Fatalf("%s release %d: status %d", tenant, i, code)
			}
		}
		return maxTries
	}
	nPure := sustained("pure-twin")
	nZCDP := sustained("zcdp-twin")
	t.Logf("pure sustained %d releases, zcdp %d (nominal eps=%g, per-release eps=%g)",
		nPure, nZCDP, nominalEps, releaseEps)
	if nPure != int(nominalEps/releaseEps) {
		t.Errorf("pure twin sustained %d, want exactly %d", nPure, int(nominalEps/releaseEps))
	}
	if nZCDP < 2*nPure {
		t.Errorf("zcdp twin sustained %d, want >= 2x pure's %d", nZCDP, nPure)
	}
}

// A windowed tenant recovers from 429 after one window tick — and cache
// replays stay free even while the budget is exhausted.
func TestWindowedTenantRecoversAfterTick(t *testing.T) {
	srv := New(Options{Seed: 13})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := newClient(t, ts.URL)

	const window = 0.2 // seconds
	if code := c.do("POST", "/v1/tenants", CreateTenantRequest{
		ID: "w", Epsilon: 1, WindowSeconds: window,
	}, nil); code != http.StatusCreated {
		t.Fatalf("create windowed tenant: status %d", code)
	}
	seedTables(t, c, "w", 100)

	// Exhaust the window's budget in one release.
	var first EstimateResponse
	if code := c.do("POST", "/v1/tenants/w/estimate", EstimateRequest{
		Table: "metrics", Column: "v", Stat: "mean", Epsilon: 1,
	}, &first); code != http.StatusOK {
		t.Fatalf("first release: status %d", code)
	}
	if code := c.do("POST", "/v1/tenants/w/estimate", EstimateRequest{
		Table: "metrics", Column: "v", Stat: "median", Epsilon: 1,
	}, nil); code != http.StatusTooManyRequests {
		t.Fatalf("overdraw within window: status %d, want 429", code)
	}
	// A byte-identical repeat of the first release is a free replay even
	// with the budget exhausted.
	var replay EstimateResponse
	if code := c.do("POST", "/v1/tenants/w/estimate", EstimateRequest{
		Table: "metrics", Column: "v", Stat: "mean", Epsilon: 1,
	}, &replay); code != http.StatusOK || !replay.Cached || replay.Value != first.Value {
		t.Fatalf("exhausted-window replay: code=%d cached=%v value=%v (want %v)",
			code, replay.Cached, replay.Value, first.Value)
	}
	// After one window tick the budget refills and the refused release
	// goes through. Poll so a slow CI machine cannot flake the test.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code := c.do("POST", "/v1/tenants/w/estimate", EstimateRequest{
			Table: "metrics", Column: "v", Stat: "median", Epsilon: 1,
		}, nil)
		if code == http.StatusOK {
			break
		}
		if code != http.StatusTooManyRequests {
			t.Fatalf("post-tick release: status %d", code)
		}
		if time.Now().After(deadline) {
			t.Fatal("windowed tenant never recovered from 429")
		}
		time.Sleep(25 * time.Millisecond)
	}
	var st TenantStatus
	c.do("GET", "/v1/tenants/w", nil, &st)
	if st.WindowSeconds != window {
		t.Errorf("status window_seconds = %v, want %v", st.WindowSeconds, window)
	}
}

// seedTables provisions the standard metrics table for an existing tenant
// (seedTenant minus the tenant creation).
func seedTables(t *testing.T, c *client, id string, nUsers int) {
	t.Helper()
	code := c.do("POST", "/v1/tenants/"+id+"/tables", CreateTableRequest{
		Name: "metrics",
		Columns: []ColumnSpec{
			{Name: "uid", Kind: "string"},
			{Name: "v", Kind: "float"},
			{Name: "n", Kind: "int"},
			{Name: "grp", Kind: "string"},
		},
		UserColumn: "uid",
	}, nil)
	if code != http.StatusCreated {
		t.Fatalf("create table: status %d", code)
	}
	rows := make([][]any, 0, 2*nUsers)
	for u := 0; u < nUsers; u++ {
		uid := fmt.Sprintf("u%05d", u)
		grp := "a"
		if u%2 == 1 {
			grp = "b"
		}
		for r := 0; r < 2; r++ {
			rows = append(rows, []any{uid, 100 + float64(u%7), float64(u % 50), grp})
		}
	}
	if code := c.do("POST", "/v1/tenants/"+id+"/tables/metrics/rows", InsertRowsRequest{Rows: rows}, nil); code != http.StatusOK {
		t.Fatalf("insert: status %d", code)
	}
}

// ---------- response cache ----------

func TestResponseCacheReplaysAndInvalidates(t *testing.T) {
	srv := New(Options{Seed: 14})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := newClient(t, ts.URL)
	seedTenant(t, c, "acme", 100, 200)

	req := EstimateRequest{Table: "metrics", Column: "v", Stat: "mean", Epsilon: 0.5}
	var a, b EstimateResponse
	if code := c.do("POST", "/v1/tenants/acme/estimate", req, &a); code != http.StatusOK {
		t.Fatalf("first: status %d", code)
	}
	if code := c.do("POST", "/v1/tenants/acme/estimate", req, &b); code != http.StatusOK {
		t.Fatalf("second: status %d", code)
	}
	if !b.Cached || a.Cached {
		t.Errorf("cached flags: first=%v second=%v, want false/true", a.Cached, b.Cached)
	}
	if b.Value != a.Value {
		t.Errorf("replay value %v != original %v", b.Value, a.Value)
	}
	// Spelling differences canonicalize onto the same entry.
	var d EstimateResponse
	if code := c.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
		Table: "Metrics", Column: "V", Stat: "MEAN", Epsilon: 0.5,
	}, &d); code != http.StatusOK || !d.Cached {
		t.Errorf("canonicalized replay: code=%d cached=%v", code, d.Cached)
	}
	var st TenantStatus
	c.do("GET", "/v1/tenants/acme", nil, &st)
	if math.Abs(st.Spent-0.5) > 1e-9 {
		t.Errorf("spent %v after 1 release + 2 replays, want 0.5", st.Spent)
	}
	if st.CacheHits != 2 || st.CacheMisses != 1 {
		t.Errorf("tenant cache hits/misses = %d/%d, want 2/1", st.CacheHits, st.CacheMisses)
	}

	// SQL releases cache too.
	q := QueryRequest{SQL: "SELECT AVG(v) FROM metrics", Epsilon: 0.5}
	var q1, q2 QueryResponse
	c.do("POST", "/v1/tenants/acme/query", q, &q1)
	c.do("POST", "/v1/tenants/acme/query", q, &q2)
	if !q2.Cached || q2.Rows[0].Values[0] != q1.Rows[0].Values[0] {
		t.Errorf("SQL replay: cached=%v values %v vs %v", q2.Cached, q2.Rows, q1.Rows)
	}

	// Ingestion moves the data version: the next identical request is a
	// fresh, charged release.
	if code := c.do("POST", "/v1/tenants/acme/tables/metrics/rows", InsertRowsRequest{
		Rows: [][]any{{"fresh-user", 500.0, 1.0, "a"}},
	}, nil); code != http.StatusOK {
		t.Fatalf("insert: status %d", code)
	}
	var e EstimateResponse
	if code := c.do("POST", "/v1/tenants/acme/estimate", req, &e); code != http.StatusOK {
		t.Fatalf("post-insert: status %d", code)
	}
	if e.Cached {
		t.Error("post-insert request replayed a stale answer")
	}
	c.do("GET", "/v1/tenants/acme", nil, &st)
	if math.Abs(st.Spent-1.5) > 1e-9 { // 0.5 estimate + 0.5 SQL + 0.5 re-release
		t.Errorf("spent %v, want 1.5", st.Spent)
	}

	// Server-wide counters aggregate the tenant's.
	var ss ServerStats
	c.do("GET", "/v1/stats", nil, &ss)
	if ss.CacheHits != 3 || ss.CacheMisses != 3 {
		t.Errorf("server cache hits/misses = %d/%d, want 3/3", ss.CacheHits, ss.CacheMisses)
	}
}

// ---------- per-record privacy unit ----------

func TestEstimateRecordUnit(t *testing.T) {
	srv := New(Options{Seed: 15})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := newClient(t, ts.URL)
	seedTenant(t, c, "acme", 1000, 300)

	// Record-level releases on the float and int columns.
	var est EstimateResponse
	if code := c.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
		Table: "metrics", Column: "v", Stat: "mean", Epsilon: 1, Unit: "record",
	}, &est); code != http.StatusOK {
		t.Fatalf("record mean: status %d", code)
	}
	if math.Abs(est.Value-100) > 20 {
		t.Errorf("record mean = %v, want ~100", est.Value)
	}
	if code := c.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
		Table: "metrics", Column: "n", Stat: "empirical_mean", Epsilon: 1, Unit: "record",
	}, &est); code != http.StatusOK {
		t.Errorf("record empirical_mean: status %d", code)
	}
	// Explicit "user" unit is the default spelled out.
	if code := c.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
		Table: "metrics", Column: "v", Stat: "median", Epsilon: 1, Unit: "User",
	}, &est); code != http.StatusOK {
		t.Errorf("explicit user unit: status %d", code)
	}
	// An unknown unit is free to refuse.
	var before, after TenantStatus
	c.do("GET", "/v1/tenants/acme", nil, &before)
	if code := c.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
		Table: "metrics", Column: "v", Stat: "mean", Epsilon: 1, Unit: "household",
	}, nil); code != http.StatusBadRequest {
		t.Errorf("bad unit: status %d, want 400", code)
	}
	c.do("GET", "/v1/tenants/acme", nil, &after)
	if after.Spent != before.Spent {
		t.Errorf("bad unit consumed budget: %v -> %v", before.Spent, after.Spent)
	}
	// The record count release sees 2 rows per user.
	if code := c.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
		Table: "metrics", Column: "v", Stat: "count", Epsilon: 2, Unit: "record",
	}, &est); code != http.StatusOK {
		t.Fatalf("record count: status %d", code)
	}
	if math.Abs(est.Value-600) > 20 {
		t.Errorf("record count = %v, want ~600", est.Value)
	}
}

// ---------- count stat: Laplace in eps, Gaussian natively in rho ----------

func TestCountStatAcrossBackends(t *testing.T) {
	srv := New(Options{Seed: 16})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := newClient(t, ts.URL)
	seedTenant(t, c, "pure", 100, 250)
	if code := c.do("POST", "/v1/tenants", CreateTenantRequest{
		ID: "z", Epsilon: 2, Accounting: "zcdp",
	}, nil); code != http.StatusCreated {
		t.Fatalf("create zcdp tenant: status %d", code)
	}
	seedTables(t, c, "z", 250)

	// Pure tenant: Laplace count charged in eps.
	var est EstimateResponse
	if code := c.do("POST", "/v1/tenants/pure/estimate", EstimateRequest{
		Table: "metrics", Column: "v", Stat: "count", Epsilon: 1,
	}, &est); code != http.StatusOK {
		t.Fatalf("pure count: status %d", code)
	}
	if math.Abs(est.Value-250) > 15 || est.EpsSpent != 1 || est.RhoSpent != 0 {
		t.Errorf("pure count = %+v, want ~250 charged eps=1", est)
	}

	// zCDP tenant: Gaussian count charged natively in rho. (Fresh decode
	// struct: omitempty fields don't overwrite a reused one.)
	const rho = 1e-4
	var zc EstimateResponse
	if code := c.do("POST", "/v1/tenants/z/estimate", EstimateRequest{
		Table: "metrics", Column: "v", Stat: "count", Rho: rho,
	}, &zc); code != http.StatusOK {
		t.Fatalf("zcdp native count: status %d", code)
	}
	// sigma = 1/sqrt(2e-4) ~ 70.7: generous tolerance.
	if math.Abs(zc.Value-250) > 400 || zc.RhoSpent != rho || zc.EpsSpent != 0 {
		t.Errorf("zcdp count = %+v, want ~250 charged rho", zc)
	}
	var st TenantStatus
	c.do("GET", "/v1/tenants/z", nil, &st)
	if math.Abs(st.Spent-rho) > 1e-15 {
		t.Errorf("zcdp tenant spent %v rho, want exactly %v (native charge)", st.Spent, rho)
	}

	// A pure tenant must refuse a native-rho cost — the Gaussian mechanism
	// has no finite pure-eps guarantee — without charging anything.
	var before, after TenantStatus
	c.do("GET", "/v1/tenants/pure", nil, &before)
	if code := c.do("POST", "/v1/tenants/pure/estimate", EstimateRequest{
		Table: "metrics", Column: "v", Stat: "count", Rho: rho,
	}, nil); code != http.StatusBadRequest {
		t.Errorf("rho on pure tenant: status %d, want 400", code)
	}
	c.do("GET", "/v1/tenants/pure", nil, &after)
	if after.Spent != before.Spent {
		t.Errorf("refused rho cost was charged: %v -> %v", before.Spent, after.Spent)
	}

	// rho is count-only, eps+rho together are ambiguous, and a negative
	// rho is refused outright rather than falling through to eps charging.
	if code := c.do("POST", "/v1/tenants/z/estimate", EstimateRequest{
		Table: "metrics", Column: "v", Stat: "mean", Rho: rho,
	}, nil); code != http.StatusBadRequest {
		t.Errorf("rho with stat mean: status %d, want 400", code)
	}
	if code := c.do("POST", "/v1/tenants/z/estimate", EstimateRequest{
		Table: "metrics", Column: "v", Stat: "count", Rho: rho, Epsilon: 1,
	}, nil); code != http.StatusBadRequest {
		t.Errorf("eps and rho together: status %d, want 400", code)
	}
	if code := c.do("POST", "/v1/tenants/z/estimate", EstimateRequest{
		Table: "metrics", Column: "v", Stat: "count", Rho: -0.5,
	}, nil); code != http.StatusBadRequest {
		t.Errorf("negative rho: status %d, want 400", code)
	}

	// Count needs no column: it privatizes the unit count alone, so a
	// column-less request (or one naming a string column) works.
	var nc EstimateResponse
	if code := c.do("POST", "/v1/tenants/pure/estimate", EstimateRequest{
		Table: "metrics", Stat: "count", Epsilon: 1,
	}, &nc); code != http.StatusOK {
		t.Fatalf("column-less count: status %d", code)
	}
	if math.Abs(nc.Value-250) > 15 {
		t.Errorf("column-less count = %v, want ~250", nc.Value)
	}
	// ...and it shares the cache entry with the column-spelled variant,
	// since the column is canonicalized away.
	var cc EstimateResponse
	if code := c.do("POST", "/v1/tenants/pure/estimate", EstimateRequest{
		Table: "metrics", Column: "grp", Stat: "count", Epsilon: 1,
	}, &cc); code != http.StatusOK || !cc.Cached {
		t.Errorf("string-column count: code=%d cached=%v, want cached replay", code, cc.Cached)
	}
}
