package serve

import "sync"

// pool runs submitted release jobs on a fixed set of worker goroutines
// with a bounded queue. Estimator releases are CPU-bound, so capping
// concurrency at ~GOMAXPROCS keeps throughput flat under overload instead
// of collapsing; the bounded queue turns excess load into fast 503s
// (load shedding) rather than unbounded latency.
type pool struct {
	workers int
	jobs    chan func()
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

func newPool(workers, depth int) *pool {
	p := &pool{workers: workers, jobs: make(chan func(), depth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.jobs {
				f()
			}
		}()
	}
	return p
}

// do runs f on a worker and waits for it to finish. It returns false
// without running f when the queue is full (the caller sheds the request)
// or the pool is closed.
func (p *pool) do(f func()) bool {
	done := make(chan struct{})
	wrapped := func() {
		defer close(done)
		f()
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false
	}
	select {
	case p.jobs <- wrapped:
		p.mu.Unlock()
	default:
		p.mu.Unlock()
		return false
	}
	<-done
	return true
}

// close drains queued jobs and stops the workers. Safe to call once.
func (p *pool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
