package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// pool runs submitted release jobs on a fixed set of worker goroutines
// with a bounded queue. Estimator releases are CPU-bound, so capping
// concurrency at ~GOMAXPROCS keeps throughput flat under overload instead
// of collapsing; the bounded queue turns excess load into fast 503s
// (load shedding) rather than unbounded latency.
type pool struct {
	workers int
	jobs    chan func()
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

func newPool(workers, depth int) *pool {
	p := &pool{workers: workers, jobs: make(chan func(), depth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.jobs {
				f()
			}
		}()
	}
	return p
}

// do runs f on a worker and waits for it to finish. It returns false
// without running f when the queue is full (the caller sheds the request)
// or the pool is closed.
func (p *pool) do(f func()) bool {
	ran, _ := p.doTimed(f)
	return ran
}

// doTimed is do plus the queue wait: how long the job sat enqueued
// before a worker picked it up — the release path's queue_wait stage.
// The wait is written by the worker before f runs and read after the
// done channel closes, so the channel's happens-before makes it safe
// without atomics.
func (p *pool) doTimed(f func()) (ran bool, wait time.Duration) {
	done := make(chan struct{})
	enqueued := time.Now()
	wrapped := func() {
		defer close(done)
		wait = time.Since(enqueued)
		f()
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false, 0
	}
	select {
	case p.jobs <- wrapped:
		p.mu.Unlock()
	default:
		p.mu.Unlock()
		return false, 0
	}
	<-done
	return true, wait
}

// fan runs n independent sub-jobs run(0..n-1) and waits for all of them
// — the shard fan-out primitive behind sharded release scans. fan is
// called from INSIDE a worker (a release already holds one), so it must
// never block on queue space: if every worker fanned and waited for
// queued sub-jobs, the pool would deadlock with all workers parked in
// Wait. Instead the caller itself drives a work-stealing loop over the
// sub-jobs and merely OFFERS helper copies to idle workers via a
// non-blocking enqueue — help arrives when the pool has slack, and when
// it does not the release degrades to a sequential scan on its own
// worker, never to a deadlock.
func (p *pool) fan(n int, run func(int)) {
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	wg.Add(n)
	// loop is a work-stealing helper: it claims sub-job indices from the
	// shared counter until none remain. The CALLER always runs it, so the
	// fan completes even if no worker ever helps; workers that pick up an
	// offered copy merely steal indices from the same counter. A copy
	// scheduled after the counter is exhausted exits immediately.
	loop := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			run(i)
			wg.Done()
		}
	}
	// Offer at most workers-1 copies: more could never run concurrently
	// anyway, and every queued copy transiently occupies a bounded queue
	// slot that would otherwise admit a real request.
	offers := n - 1
	if offers > p.workers-1 {
		offers = p.workers - 1
	}
	for k := 0; k < offers; k++ {
		offered := false
		p.mu.Lock()
		if !p.closed {
			select {
			case p.jobs <- loop:
				offered = true
			default:
			}
		}
		p.mu.Unlock()
		if !offered {
			break // no idle capacity; the caller alone drives the scan
		}
	}
	loop()
	wg.Wait()
}

// close drains queued jobs and stops the workers. Safe to call once.
func (p *pool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
