package serve

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/store"
)

// TestCompactionConcurrentWithReleases is the serve-level stall test:
// releases keep charging and answering while CompactTenant runs
// repeatedly on the same tenant — off-path compaction takes neither the
// persist lock nor the shard locks, so nothing blocks or fails. The
// server is then killed WITHOUT a flush: recovery from the compacted
// snapshot + sealed segments + live tail must report spend at least the
// pre-crash acknowledged spend.
func TestCompactionConcurrentWithReleases(t *testing.T) {
	dir := t.TempDir()
	srvA, cA, stopA := openDurable(t, dir, 3)
	if code := cA.do("POST", "/v1/tenants", CreateTenantRequest{ID: "acme", Epsilon: 1e6}, nil); code != http.StatusCreated {
		t.Fatalf("create tenant: %d", code)
	}
	if code := cA.do("POST", "/v1/tenants/acme/tables", CreateTableRequest{
		Name:       "metrics",
		Columns:    []ColumnSpec{{Name: "uid", Kind: "string"}, {Name: "v", Kind: "float"}},
		UserColumn: "uid",
	}, nil); code != http.StatusCreated {
		t.Fatalf("create table: %d", code)
	}
	rows := make([][]any, 0, 200)
	for u := 0; u < 100; u++ {
		uid := fmt.Sprintf("u%03d", u)
		rows = append(rows, []any{uid, 100.0 + float64(u%7)}, []any{uid, 95.0 + float64(u%5)})
	}
	if code := cA.do("POST", "/v1/tenants/acme/tables/metrics/rows", InsertRowsRequest{Rows: rows}, nil); code != http.StatusOK {
		t.Fatalf("insert: %d", code)
	}

	const releases = 60
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < releases; i++ {
			p := 0.01 + 0.98*float64(i)/releases // distinct: no cache replays
			var est EstimateResponse
			if code := cA.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
				Table: "metrics", Column: "v", Stat: "quantile", P: p, Epsilon: 0.01,
			}, &est); code != http.StatusOK {
				t.Errorf("release %d during compaction: HTTP %d", i, code)
				return
			}
		}
	}()
	for i := 0; i < 15; i++ {
		if err := srvA.CompactTenant("acme"); err != nil {
			t.Fatalf("compaction %d: %v", i, err)
		}
	}
	wg.Wait()
	if err := srvA.CompactTenant("nope"); err == nil || !strings.Contains(err.Error(), "unknown tenant") {
		t.Fatalf("CompactTenant on unknown tenant: %v", err)
	}

	var before TenantStatus
	if code := cA.do("GET", "/v1/tenants/acme", nil, &before); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if before.Spent <= 0 {
		t.Fatalf("pre-crash spend %v — the test did not spend", before.Spent)
	}
	stopA() // crash: no Close, no Flush — snapshot + segments + tail only

	_, cB, stopB := openDurable(t, dir, 4)
	defer stopB()
	var after TenantStatus
	if code := cB.do("GET", "/v1/tenants/acme", nil, &after); code != http.StatusOK {
		t.Fatalf("post-recovery status: %d", code)
	}
	if after.Spent < before.Spent {
		t.Fatalf("recovered spend %v < acknowledged %v — compaction lost deductions", after.Spent, before.Spent)
	}
	var q QueryResponse
	if code := cB.do("POST", "/v1/tenants/acme/query", QueryRequest{
		SQL: "SELECT COUNT(*) FROM metrics", Epsilon: 2,
	}, &q); code != http.StatusOK {
		t.Fatalf("post-recovery query: %d", code)
	}
}

// TestMemAuditSeqGapHardError: the in-memory audit sink enforces the
// same gap-free seq invariant the durable log's reconcile does — a
// discontinuity between the retained tail and the counter is a hard
// error, not something to paper over by appending past it.
func TestMemAuditSeqGapHardError(t *testing.T) {
	a := &memAudit{}
	for i := 0; i < 3; i++ {
		if err := a.Append(&store.AuditRecord{ReleaseID: fmt.Sprintf("r%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	a.seq++ // simulate a lost record: counter moves, ring tail does not
	err := a.Append(&store.AuditRecord{ReleaseID: "r-gap"})
	if err == nil || !strings.Contains(err.Error(), "audit seq gap") {
		t.Fatalf("Append over a seq gap: %v, want gap error", err)
	}
	if got := a.Len(); got != 4 {
		t.Fatalf("Len after refused append = %d, want 4", got)
	}
}
