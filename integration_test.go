package repro

// Cross-package integration tests: end-to-end convergence rates of the
// public API (the empirical analogue of the paper's sample-complexity
// theorems), composition across the stack, and the public API exercised
// exactly as the examples and CLIs use it.

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/dist"
	"repro/internal/dpsql"
	"repro/internal/xrand"
	"repro/updp"
)

// medianErr runs trials independent releases and reports the median
// absolute error.
func medianErr(trials int, truth float64, release func(seed uint64) (float64, error)) float64 {
	errs := make([]float64, 0, trials)
	for s := 0; s < trials; s++ {
		v, err := release(uint64(1000 + s))
		if err != nil {
			errs = append(errs, math.Inf(1))
			continue
		}
		errs = append(errs, math.Abs(v-truth))
	}
	sort.Float64s(errs)
	return errs[len(errs)/2]
}

// TestMeanConvergenceRate checks the Theorem 4.6 shape end to end: for a
// Gaussian at ε=1 the error is dominated by σ/√n, so growing n by 16x
// should shrink the median error by roughly 4x (we accept ≥ 2x).
func TestMeanConvergenceRate(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical integration test")
	}
	d := dist.NewNormal(7, 3)
	gen := func(n int, seed uint64) []float64 {
		return dist.SampleN(d, xrand.New(seed), n)
	}
	errAt := func(n int) float64 {
		return medianErr(15, 7, func(seed uint64) (float64, error) {
			return updp.Mean(gen(n, seed), 1.0, updp.WithSeed(seed*31))
		})
	}
	small, large := errAt(4000), errAt(64000)
	if large > small/2 {
		t.Errorf("16x data only improved error %v -> %v (want >= 2x)", small, large)
	}
}

// TestIQRPrivacyDominatedRegime checks the Theorem 6.2 shape in the
// high-privacy regime: at small ε the error is ∝ 1/(εn), so 8x more data
// should shrink the error by clearly more than the sampling-only √8.
func TestIQRPrivacyDominatedRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical integration test")
	}
	d := dist.NewLaplace(0, 1)
	trueIQR := dist.IQROf(d)
	errAt := func(n int) float64 {
		return medianErr(15, trueIQR, func(seed uint64) (float64, error) {
			data := dist.SampleN(d, xrand.New(seed), n)
			return updp.IQR(data, 0.2, updp.WithSeed(seed*37))
		})
	}
	small, large := errAt(5000), errAt(40000)
	if large > small/2.5 {
		t.Errorf("8x data in the privacy regime: %v -> %v (want > 2.5x)", small, large)
	}
}

// TestVarianceScaleFreedom runs the same code on σ spanning six orders of
// magnitude — the operational content of Theorem 5.3's log log σ terms.
func TestVarianceScaleFreedom(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical integration test")
	}
	for _, sigma := range []float64{1e-3, 1e3} {
		d := dist.NewNormal(0, sigma)
		rel := medianErr(11, 1, func(seed uint64) (float64, error) {
			data := dist.SampleN(d, xrand.New(seed), 30000)
			v, err := updp.Variance(data, 1.0, updp.WithSeed(seed*41))
			return v / (sigma * sigma), err // normalized to 1
		})
		if rel > 0.3 {
			t.Errorf("sigma=%v: relative variance error %v", sigma, rel)
		}
	}
}

// TestBudgetedWorkflow exercises the Estimator exactly as the quickstart
// example does, asserting both the releases and the budget arithmetic.
func TestBudgetedWorkflow(t *testing.T) {
	d := dist.NewLogNormal(10, 0.6)
	data := dist.SampleN(d, xrand.New(5), 50000)
	est, err := updp.NewEstimator(data, 4.0, updp.WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	mean, err := est.Mean(1.0)
	if err != nil {
		t.Fatal(err)
	}
	med, err := est.Median(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.StdDev(1.0); err != nil {
		t.Fatal(err)
	}
	if _, err := est.IQR(1.0); err != nil {
		t.Fatal(err)
	}
	if mean < med {
		t.Errorf("log-normal should have mean (%v) > median (%v)", mean, med)
	}
	if math.Abs(mean-d.Mean())/d.Mean() > 0.1 {
		t.Errorf("mean = %v, want ~%v", mean, d.Mean())
	}
	if _, err := est.Mean(0.1); err == nil {
		t.Error("budget should be exhausted")
	}
}

// TestUniversalityAcrossFamilies runs one code path over every family in
// the distribution substrate with a finite mean and checks the estimate
// lands within 10 IQR-normalized units — no configuration changes between
// families, which is the definition of a universal estimator.
func TestUniversalityAcrossFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical integration test")
	}
	families := []dist.Distribution{
		dist.NewNormal(1e6, 5),
		dist.NewLaplace(-1e4, 2),
		dist.NewUniform(400, 500),
		dist.NewExponential(0.001),
		dist.NewLogNormal(3, 1),
		dist.NewPareto(10, 3),
		dist.NewStudentTLocScale(4, 77, 3),
	}
	for _, d := range families {
		truth := d.Mean()
		scale := dist.IQROf(d)
		got := medianErr(9, truth, func(seed uint64) (float64, error) {
			data := dist.SampleN(d, xrand.New(seed), 30000)
			return updp.Mean(data, 1.0, updp.WithSeed(seed*43))
		})
		if got > scale {
			t.Errorf("%s: median error %v exceeds one IQR (%v)", d.Name(), got, scale)
		}
	}
}

// TestEmpiricalVsStatisticalConsistency: on a large i.i.d. sample the
// empirical-setting mean (Algorithm 5 via the public API) and the
// statistical mean (Algorithm 8) must agree to within their error bounds.
func TestEmpiricalVsStatisticalConsistency(t *testing.T) {
	d := dist.NewNormal(12345, 4)
	data := dist.SampleN(d, xrand.New(77), 50000)
	ints := make([]int64, len(data))
	for i, v := range data {
		ints[i] = int64(math.Round(v * 1000)) // millimeter-style fixed point
	}
	em, err := updp.EmpiricalMean(ints, 1.0, updp.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	sm, err := updp.Mean(data, 1.0, updp.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(em/1000 - sm); diff > 1 {
		t.Errorf("empirical %v vs statistical %v differ by %v", em/1000, sm, diff)
	}
}

// TestPercentileWorkflowEndToEnd exercises the full multi-quantile + CI
// surface the way the SLO example does: one shared-range release for the
// profile, a distribution-free interval certifying the p90, and a trimmed
// mean — all against a heavy-tailed latency-like distribution with known
// population quantiles.
func TestPercentileWorkflowEndToEnd(t *testing.T) {
	d := dist.NewLogNormal(3, 0.5) // median e^3 ~ 20.1
	data := dist.SampleN(d, xrand.New(99), 30000)

	ps := []float64{0.5, 0.9, 0.99}
	qs, err := updp.Quantiles(data, ps, 1.0, updp.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		truth := d.Quantile(p)
		if rel := math.Abs(qs[i]-truth) / truth; rel > 0.25 {
			t.Errorf("p%.0f: released %v vs true %v (rel err %v)", p*100, qs[i], truth, rel)
		}
	}

	ci, err := updp.QuantileInterval(data, 0.9, 1.0, updp.WithSeed(4), updp.WithBeta(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if truth := d.Quantile(0.9); truth < ci.Lo || truth > ci.Hi {
		t.Errorf("p90 CI [%v, %v] misses true %v", ci.Lo, ci.Hi, truth)
	}

	tm, err := updp.TrimmedMean(data, 0.05, 1.0, updp.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if tm < d.Quantile(0.2) || tm > d.Quantile(0.8) {
		t.Errorf("trimmed mean %v outside the central mass", tm)
	}
}

// TestSQLWorkflowEndToEnd drives the dpsql engine through the full DDL →
// DML → budgeted multi-aggregate path with the extended aggregates.
func TestSQLWorkflowEndToEnd(t *testing.T) {
	db := dpsql.NewDB()
	if err := db.Run(`CREATE TABLE m (uid STRING USER, grp STRING, v FLOAT)`); err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(101)
	for u := 0; u < 1200; u++ {
		g := "a"
		if u%2 == 0 {
			g = "b"
		}
		stmt := fmt.Sprintf(`INSERT INTO m VALUES ('u%d', '%s', %.4f)`, u, g, 50+5*rng.Gaussian())
		if err := db.Run(stmt); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.SetBudget(4.0); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(xrand.New(102),
		"SELECT MEDIAN(v), IQR(v), QUANTILE(v, 0.9) FROM m GROUP BY grp", 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("want 2 groups, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		med, iqr, p90 := row.Values[0], row.Values[1], row.Values[2]
		if math.Abs(med-50) > 15 {
			t.Errorf("group %s: median %v far from 50", row.Group.String(), med)
		}
		if iqr < 0 {
			t.Errorf("group %s: negative IQR %v", row.Group.String(), iqr)
		}
		if p90 < med-20 {
			t.Errorf("group %s: p90 %v below median %v", row.Group.String(), p90, med)
		}
	}
	if got := db.Remaining(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("remaining budget %v, want 1.0", got)
	}
}
