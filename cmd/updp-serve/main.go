// Command updp-serve runs the concurrent multi-tenant DP query service:
// an HTTP+JSON API over the repository's universal private estimators and
// the user-level-DP SQL engine, with per-tenant ε-budget enforcement.
//
//	updp-serve -addr :8500
//	updp-serve -addr :8500 -workers 8 -demo
//	updp-serve -demo -accounting zcdp -delta 1e-6
//	updp-serve -demo -accounting rdp        # Rényi accounting (default order grid)
//	updp-serve -demo -accounting rdp -orders 2,4,8,16,32,64
//	updp-serve -demo -window 3600           # budget refills hourly
//	updp-serve -shards 8                    # tenants default to 8-way sharded tables
//	updp-serve -metrics-addr :9090          # Prometheus scrape on its own listener
//	updp-serve -debug-addr 127.0.0.1:6060   # pprof on an explicit private listener
//
// GET /metrics (Prometheus text format) is always mounted on the API
// listener; -metrics-addr additionally serves it on a dedicated address
// so a scraper needs no access to the query API. -debug-addr exposes
// net/http/pprof on its own mux — bind it to localhost; it is never
// mounted on the API listener. docs/OBSERVABILITY.md catalogs the
// metrics, the per-release trace stages, and the DP audit log.
//
// -shards sets the default table shard count for new tenants: tables are
// hash-partitioned by user id so ingestion stripes across per-shard locks
// and release scans fan out over the worker pool — a pure storage
// topology, invisible to answers, noise, and budget (a request may still
// name its own "shards" at tenant creation).
//
// With -demo a tenant "demo" (ε = 16) is preloaded with a synthetic
// salaries table so the API can be explored immediately; -accounting,
// -delta, -orders, and -window configure the demo tenant's composition
// backend (pure-ε basic composition, zCDP ρ-accounting, Rényi/RDP
// accounting over an order grid, optional renewable window — see
// docs/ACCOUNTING.md for choosing one):
//
//	curl -s localhost:8500/v1/tenants/demo
//	curl -s -X POST localhost:8500/v1/tenants/demo/estimate \
//	     -d '{"table":"salaries","column":"salary","stat":"median","epsilon":0.5}'
//	curl -s -X POST localhost:8500/v1/tenants/demo/query \
//	     -d '{"sql":"SELECT AVG(salary) FROM salaries GROUP BY dept","epsilon":1}'
//
// See internal/serve for the endpoint reference and the budget model.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/dpsql"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/xrand"
)

func main() {
	var (
		addr       = flag.String("addr", ":8500", "listen address")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		seed       = flag.Uint64("seed", 0, "RNG seed; 0 uses OS entropy (required for real privacy)")
		dataDir    = flag.String("data-dir", "", "durable tenant state directory (WAL + snapshots); empty = in-memory only")
		commitWait = flag.Duration("commit-delay", 0, "WAL group-commit coalescing window (0 = fire immediately; batches still form naturally under load)")
		commitMax  = flag.Int("commit-batch", 0, "WAL group-commit max entries per batch (0 = 256)")
		noGroup    = flag.Bool("no-group-commit", false, "disable WAL group commit: one fsync per deduction and per audit record")
		shards     = flag.Int("shards", 0, "default table shard count for new tenants (hash-partitioned by user id; 0 = 1, monolithic)")
		demo       = flag.Bool("demo", false, "preload a demo tenant with synthetic salaries")
		accounting = flag.String("accounting", "pure", `demo tenant composition backend: "pure", "zcdp", or "rdp"`)
		delta      = flag.Float64("delta", 0, "demo tenant delta for zcdp/rdp accounting (0 = server default 1e-6)")
		orders     = flag.String("orders", "", "demo tenant Rényi order grid for rdp accounting, comma-separated (empty = default grid)")
		window     = flag.Float64("window", 0, "demo tenant budget refill window in seconds (0 = lifetime budget)")

		metricsAddr = flag.String("metrics-addr", "", "serve GET /metrics on a dedicated listener too (always on the API listener); empty = API listener only")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof on this address (bind to localhost); empty = disabled")

		traceRing   = flag.Int("trace-ring", 0, "flight-recorder capacity: retain the last N release traces plus up to N slow/errored/shed ones at GET /v1/traces (0 = 256, negative disables)")
		exemplars   = flag.Bool("exemplars", false, "render OpenMetrics exemplars on /metrics histograms (most recent release id per bucket)")
		sloLatency  = flag.Duration("slo-latency", 0, "arm the self-watchdog: capture an incident bundle when release p99 exceeds this for -slo-windows consecutive windows (0 = disabled; requires -incident-dir)")
		sloWindow   = flag.Duration("slo-window", 0, "watchdog latency aggregation window (0 = 10s)")
		sloWindows  = flag.Int("slo-windows", 0, "consecutive breaching windows before a capture (0 = 2)")
		incidentDir = flag.String("incident-dir", "", "directory receiving watchdog incident bundles (profiles + metrics + traces)")
		incidentGap = flag.Duration("incident-cooldown", 0, "minimum gap between incident captures (0 = 10m)")
	)
	flag.Parse()

	orderGrid, err := parseOrders(*orders)
	if err != nil {
		log.Fatalf("updp-serve: %v", err)
	}
	if *sloLatency > 0 && *incidentDir == "" {
		log.Print("updp-serve: -slo-latency set without -incident-dir; watchdog disarmed")
	}

	srv, err := serve.Open(serve.Options{
		Workers:          *workers,
		Seed:             *seed,
		DataDir:          *dataDir,
		DefaultShards:    *shards,
		GroupCommit:      store.GroupCommitOptions{MaxDelay: *commitWait, MaxBatch: *commitMax, Disable: *noGroup},
		TraceRing:        *traceRing,
		Exemplars:        *exemplars,
		SLOLatency:       *sloLatency,
		SLOWindow:        *sloWindow,
		SLOWindows:       *sloWindows,
		IncidentDir:      *incidentDir,
		IncidentCooldown: *incidentGap,
	})
	if err != nil {
		log.Fatalf("updp-serve: %v", err)
	}
	defer func() {
		// Close compacts every durable tenant into a final snapshot, so
		// the next boot replays a snapshot instead of a long WAL.
		if err := srv.Close(); err != nil {
			log.Printf("updp-serve: close: %v", err)
		}
	}()
	if *dataDir != "" {
		log.Printf("durable store at %s", *dataDir)
	}
	if *demo {
		tn, recovered := srv.Tenant("demo")
		if !recovered {
			tn, err = srv.CreateTenantWith(serve.CreateTenantRequest{
				ID:            "demo",
				Epsilon:       16,
				Accounting:    *accounting,
				Delta:         *delta,
				WindowSeconds: *window,
				Orders:        orderGrid,
			})
			if err != nil {
				log.Fatalf("updp-serve: demo tenant: %v", err)
			}
		}
		switch _, tabErr := tn.DB().TableByName("salaries"); {
		case recovered && tabErr == nil:
			// Fully recovered — reloading would double the data and a
			// fresh ledger would void the recovered spend.
			log.Print("demo tenant recovered from data dir (spend preserved)")
		default:
			// Fresh tenant, or one recovered config-only (a crash landed
			// between the durable creation and the data snapshot): load
			// the data; the recovered ledger keeps whatever it spent.
			if err := loadDemoData(tn); err != nil {
				log.Fatalf("updp-serve: demo data: %v", err)
			}
			// Programmatic provisioning bypasses the WAL hooks; compact a
			// snapshot now so the demo data is durable from the start.
			if err := srv.Flush(); err != nil {
				log.Fatalf("updp-serve: snapshotting demo data: %v", err)
			}
			if recovered {
				// Config-only recovery: the durable config wins over the
				// flags, so report it instead of what was typed.
				log.Print("demo tenant data reloaded (recovered config and spend preserved; -accounting/-delta/-window flags ignored)")
			} else {
				log.Printf("demo tenant ready: tenant=demo table=salaries budget eps=16 accounting=%s window=%gs",
					*accounting, *window)
			}
		}
	}

	if *metricsAddr != "" {
		mm := http.NewServeMux()
		mm.Handle("GET /metrics", srv.MetricsHandler())
		ms := &http.Server{Addr: *metricsAddr, Handler: mm, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			log.Printf("metrics on %s/metrics", *metricsAddr)
			if err := ms.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Fatalf("updp-serve: metrics listener: %v", err)
			}
		}()
	}
	if *debugAddr != "" {
		// pprof goes on its OWN mux — registering on the default mux (the
		// net/http/pprof init side effect) would expose it to anything that
		// ever serves http.DefaultServeMux.
		dm := http.NewServeMux()
		dm.HandleFunc("/debug/pprof/", pprof.Index)
		dm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ds := &http.Server{Addr: *debugAddr, Handler: dm, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			log.Printf("pprof on %s/debug/pprof/", *debugAddr)
			if err := ds.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Fatalf("updp-serve: debug listener: %v", err)
			}
		}()
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		log.Printf("updp-serve listening on %s (workers=%d)", *addr, srv.Workers())
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("updp-serve: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("updp-serve: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("updp-serve: shutdown: %v", err)
	}
}

// parseOrders decodes the -orders flag: a comma-separated Rényi order
// grid ("2,4,8,16"), empty meaning the server-side default grid.
func parseOrders(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("-orders: %q is not a number", f)
		}
		out = append(out, v)
	}
	return out, nil
}

// loadDemoData fills the demo tenant with a lognormal salaries table —
// heavy-tailed data with no natural clipping bound, i.e. exactly the
// regime the universal estimators exist for.
func loadDemoData(tn *serve.Tenant) error {
	db := tn.DB()
	if err := db.Run(`CREATE TABLE salaries (
		user_id STRING USER,
		dept    STRING,
		salary  FLOAT
	)`); err != nil {
		return err
	}
	tab, err := db.TableByName("salaries")
	if err != nil {
		return err
	}
	rng := xrand.New(7)
	depts := []string{"eng", "sales", "ops"}
	for u := 0; u < 5000; u++ {
		uid := fmt.Sprintf("u%05d", u)
		dept := depts[u%len(depts)]
		// LogNormal(11, 0.5): median e^11 ≈ 59.9k, heavy right tail.
		salary := math.Exp(11 + 0.5*rng.Gaussian())
		if err := tab.Insert(dpsql.Str(uid), dpsql.Str(dept), dpsql.Float(salary)); err != nil {
			return err
		}
	}
	return nil
}
