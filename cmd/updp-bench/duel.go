package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/serve"
)

// The durability duel: the same distinct-release workload against two
// in-process servers — one in-memory, one durable on a throwaway data
// dir — at the same concurrency, so the fsync tax on the release path is
// a measured ratio instead of an asserted one. Every request is a
// byte-distinct quantile release (never a cache replay), so each one
// charges the ledger and, on the durable twin, must clear the WAL's
// group-commit barrier before its answer returns. The durable twin's
// /metrics scrape reports how the barrier amortized: fsyncs per charged
// release and entries acked per fsync (updp_wal_batch_size).

// duelResult is one twin's measured run.
type duelResult struct {
	label    string
	ok       int
	refused  int
	shed     int
	errs     int
	elapsed  time.Duration
	p50, p95 time.Duration
	before   metricSnapshot
	after    metricSnapshot
}

func (r duelResult) rps() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.ok) / r.elapsed.Seconds()
}

// runDuel runs the durable-vs-ephemeral twins and prints the gap.
func runDuel(cfg loadgenConfig) error {
	if cfg.target != "self" {
		return fmt.Errorf("loadgen: -duel needs -serve self (it owns both servers)")
	}
	dir, err := os.MkdirTemp("", "updp-duel-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	arms := []struct {
		label   string
		dataDir string
	}{
		{"ephemeral", ""},
		{"durable", dir},
	}
	results := make([]duelResult, len(arms))
	var workers int
	for i, arm := range arms {
		if results[i], workers, err = duelArm(cfg, arm.label, arm.dataDir); err != nil {
			return err
		}
	}

	eph, dur := results[0], results[1]
	fmt.Printf("=== durability duel: %d clients (pool width %d), %v, %d users, eps/release=%g, accounting=%s ===\n",
		cfg.clients, workers, cfg.duration, cfg.users, cfg.eps, cfg.accounting)
	fmt.Printf("%-11s %10s %12s %12s %12s\n", "twin", "ok", "ok/s", "p50", "p95")
	for _, r := range results {
		fmt.Printf("%-11s %10d %12.1f %12v %12v\n",
			r.label, r.ok, r.rps(), r.p50.Round(time.Microsecond), r.p95.Round(time.Microsecond))
	}
	if dur.rps() > 0 {
		fmt.Printf("gap          ephemeral/durable = %.2fx (target: within ~2x at pool-width concurrency)\n",
			eph.rps()/dur.rps())
	}
	// The durable twin's own instruments say how the commit barrier
	// amortized: charged releases per fsync, entries per batch.
	fsyncs := dur.after["updp_wal_fsync_seconds_count"] - dur.before["updp_wal_fsync_seconds_count"]
	batches := dur.after["updp_wal_batch_size_count"] - dur.before["updp_wal_batch_size_count"]
	entries := dur.after["updp_wal_batch_size_sum"] - dur.before["updp_wal_batch_size_sum"]
	if fsyncs > 0 {
		fmt.Printf("group-commit %.0f fsyncs for %d charged releases (%.2f releases/fsync)\n",
			fsyncs, dur.ok, float64(dur.ok)/fsyncs)
	}
	if batches > 0 {
		fmt.Printf("batch size   %.2f entries/barrier over %.0f barriers\n", entries/batches, batches)
	}
	errsTotal := eph.errs + dur.errs
	if errsTotal > 0 {
		return fmt.Errorf("loadgen: %d requests errored", errsTotal)
	}
	return nil
}

// duelArm provisions one twin and hammers it with the duel workload,
// returning its measured result and the server's pool width.
func duelArm(cfg loadgenConfig, label, dataDir string) (duelResult, int, error) {
	res := duelResult{label: label}
	srv, err := serve.Open(serve.Options{
		Seed:       cfg.seed,
		QueueDepth: 4 * cfg.clients,
		DataDir:    dataDir,
	})
	if err != nil {
		return res, 0, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return res, 0, err
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	defer func() { hs.Close(); srv.Close() }()

	hc := &http.Client{Timeout: 30 * time.Second}
	tenant := fmt.Sprintf("duel-%s-%d", label, time.Now().UnixNano())
	if err := provisionBench(cfg, hc, base, serve.CreateTenantRequest{
		ID:         tenant,
		Epsilon:    1e9,
		Accounting: cfg.accounting,
		Delta:      cfg.delta,
	}); err != nil {
		return res, 0, err
	}
	if res.before, _, err = scrapeMetrics(hc, base); err != nil {
		return res, 0, err
	}

	// The hammer: every client fires back-to-back DISTINCT quantile
	// releases (unique rank per request), so nothing replays from the
	// cache — each ok answer charged the ledger, and on the durable twin
	// cleared the commit barrier first.
	lats := make([][]time.Duration, cfg.clients)
	tallies := make([]duelResult, cfg.clients)
	deadline := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := &http.Client{Timeout: 30 * time.Second}
			ta := &tallies[c]
			for i := 0; time.Now().Before(deadline); i++ {
				p := 0.001 + 0.998*float64((c*99991+i)%999983)/999983
				body, _ := json.Marshal(serve.EstimateRequest{
					Table: "metrics", Column: "v", Stat: "quantile", P: p, Epsilon: cfg.eps,
				})
				t0 := time.Now()
				resp, err := cl.Post(base+"/v1/tenants/"+tenant+"/estimate", "application/json", bytes.NewReader(body))
				if err != nil {
					ta.errs++
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				lats[c] = append(lats[c], time.Since(t0))
				switch resp.StatusCode {
				case http.StatusOK:
					ta.ok++
				case http.StatusTooManyRequests:
					ta.refused++
				case http.StatusServiceUnavailable:
					ta.shed++
				default:
					ta.errs++
				}
			}
		}(c)
	}
	start := time.Now()
	wg.Wait()
	res.elapsed = time.Since(start)

	var all []time.Duration
	for c := range tallies {
		res.ok += tallies[c].ok
		res.refused += tallies[c].refused
		res.shed += tallies[c].shed
		res.errs += tallies[c].errs
		all = append(all, lats[c]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		ix := int(math.Ceil(p*float64(len(all)))) - 1
		if ix < 0 {
			ix = 0
		}
		return all[ix]
	}
	res.p50, res.p95 = pct(0.50), pct(0.95)
	if res.after, _, err = scrapeMetrics(hc, base); err != nil {
		return res, 0, err
	}
	return res, srv.Workers(), nil
}
