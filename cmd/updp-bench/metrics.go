package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// A minimal Prometheus text-exposition reader for the bench: enough to
// scrape updp-serve's /metrics before and after a run and difference the
// counters and histogram sums, so the report can break a run's latency
// down by stage without any client-side instrumentation. It reads
// samples only (lines starting with '#' are commentary) and keys them by
// the full "name{labels}" series string.

// metricSnapshot is one scrape: series string -> value.
type metricSnapshot map[string]float64

// scrapeMetrics fetches base/metrics, returning the parsed samples and
// the raw exposition body (for -metrics-out).
func scrapeMetrics(hc *http.Client, base string) (metricSnapshot, string, error) {
	resp, err := hc.Get(base + "/metrics")
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("loadgen: scraping /metrics: HTTP %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	snap := metricSnapshot{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue // e.g. a timestamped exposition this reader does not speak
		}
		snap[line[:sp]] = v
	}
	return snap, string(body), nil
}

// stageDelta is one stage's aggregate over a measured interval.
type stageDelta struct {
	stage string
	count float64
	total float64 // seconds
}

// mean returns the stage's mean latency over the interval.
func (d stageDelta) mean() time.Duration {
	if d.count <= 0 {
		return 0
	}
	return time.Duration(d.total / d.count * float64(time.Second))
}

// stageDeltas differences a histogram-vec's per-stage _sum/_count between
// two scrapes, for the histogram family name (e.g.
// "updp_release_stage_seconds"), sorted by total time descending.
func stageDeltas(before, after metricSnapshot, family string) []stageDelta {
	prefix := family + `_sum{stage="`
	var out []stageDelta
	for key, v := range after {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		stage := strings.TrimSuffix(strings.TrimPrefix(key, prefix), `"}`)
		cntKey := family + `_count{stage="` + stage + `"}`
		cnt := after[cntKey] - before[cntKey]
		if cnt <= 0 {
			continue
		}
		out = append(out, stageDelta{stage: stage, count: cnt, total: v - before[key]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].total > out[j].total })
	return out
}

// printStageBreakdown prints the per-stage latency table for a measured
// interval: where the run's wall-clock went, attributed by the server's
// own stage histograms rather than client-side guesswork. Stages are not
// disjoint (ledger_deduct and wal_fsync happen inside the SQL path's
// deduct; cache_lookup runs on every request including replays), so the
// totals are attribution, not a sum to 100%.
func printStageBreakdown(before, after metricSnapshot) {
	deltas := stageDeltas(before, after, "updp_release_stage_seconds")
	if len(deltas) == 0 {
		return
	}
	fmt.Printf("per-stage    %-13s %10s %12s %12s\n", "stage", "samples", "mean", "total")
	for _, d := range deltas {
		fmt.Printf("             %-13s %10.0f %12v %12v\n",
			d.stage, d.count, d.mean().Round(time.Microsecond),
			(time.Duration(d.total * float64(time.Second))).Round(time.Millisecond))
	}
}

// writeMetricsOut saves a raw /metrics exposition next to the BENCH_*
// artifacts when -metrics-out names a path.
func writeMetricsOut(path, body string) error {
	if path == "" {
		return nil
	}
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		return fmt.Errorf("loadgen: writing -metrics-out: %w", err)
	}
	fmt.Fprintf(os.Stderr, "loadgen: wrote /metrics scrape to %s\n", path)
	return nil
}

// writeTracesOut dumps the server's flight recorder (GET /v1/traces) to
// a file when -traces-out names a path — the post-run artifact that lets
// CI keep the slow-tail traces next to the metrics scrape.
func writeTracesOut(hc *http.Client, base, path string) error {
	if path == "" {
		return nil
	}
	resp, err := hc.Get(base + "/v1/traces")
	if err != nil {
		return fmt.Errorf("loadgen: fetching /v1/traces: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("loadgen: reading /v1/traces: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: GET /v1/traces: HTTP %d", resp.StatusCode)
	}
	if err := os.WriteFile(path, body, 0o644); err != nil {
		return fmt.Errorf("loadgen: writing -traces-out: %w", err)
	}
	fmt.Fprintf(os.Stderr, "loadgen: wrote trace dump to %s\n", path)
	return nil
}
