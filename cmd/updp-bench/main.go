// Command updp-bench runs the reproduction experiments E1–E15 (DESIGN.md §4)
// and prints their tables. Each experiment regenerates one analytic claim of
// the paper (a utility theorem's shape, or Table 1's assumptions matrix).
//
// Usage:
//
//	updp-bench -list
//	updp-bench -exp E5,E10 -trials 20 -seed 1
//	updp-bench -all -quick -format md > results.md
//
// It is also the service-level load generator for updp-serve: -serve
// hammers a server with a mixed estimator/SQL workload from many
// concurrent clients and reports throughput and latency percentiles.
//
//	updp-bench -serve self -clients 32 -duration 5s
//	updp-bench -serve http://localhost:8500 -clients 64 -duration 30s -users 20000
//	updp-bench -serve self -accounting zcdp -window 60
//	updp-bench -serve self -grouped                  # GROUP BY workload: histograms + grouped releases
//	updp-bench -serve self -compare -budget 0.1
//	updp-bench -serve self -restart
//	updp-bench -serve self -duel              # durable vs ephemeral throughput
//	updp-bench -serve self -shards 8          # bench tenant on 8-way sharded tables
//	updp-bench -serve self -shards sweep      # shard-scaling sweep at N=1,4,16
//	updp-bench -serve self -snapshot-during   # release p99 during compaction vs steady state
//
// -accounting/-delta/-window pick the bench tenant's composition backend
// ("pure", "zcdp", or "rdp"); -compare runs the backend exhaustion duel
// instead of the throughput run: three twins with the same nominal
// (ε, δ) budget — pure-ε, zCDP, and Rényi (RDP) — receive the same mixed
// Laplace+Gaussian stream of small releases until each hits 429, showing
// rdp sustaining the most releases, zcdp next, pure fewest. -restart runs the
// durability recovery scenario: a durable server is spent against,
// compacted once, crashed without a flush, and re-opened — spend must
// carry over (never refill) and the recovery wall-time is reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		expFlag = flag.String("exp", "", "comma-separated experiment IDs (e.g. E1,E5)")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list experiments and exit")
		trials  = flag.Int("trials", 0, "trials per table cell (0 = default)")
		seed    = flag.Uint64("seed", 1, "base RNG seed")
		quick   = flag.Bool("quick", false, "smaller data sizes for a fast pass")
		format  = flag.String("format", "text", "output format: text, md, csv")

		serveTarget = flag.String("serve", "", `load-generate against an updp-serve instance: "self" or a base URL`)
		clients     = flag.Int("clients", 32, "loadgen: concurrent clients")
		duration    = flag.Duration("duration", 5*time.Second, "loadgen: run length")
		users       = flag.Int("users", 5000, "loadgen: synthetic users in the bench table")
		loadEps     = flag.Float64("loadeps", 0.001, "loadgen: per-release epsilon")
		accounting  = flag.String("accounting", "pure", `loadgen: bench tenant backend, "pure", "zcdp", or "rdp"`)
		delta       = flag.Float64("delta", 0, "loadgen: zcdp/rdp delta (0 = server default 1e-6)")
		window      = flag.Float64("window", 0, "loadgen: bench tenant refill window in seconds (0 = lifetime)")
		compare     = flag.Bool("compare", false, "loadgen: run the pure-vs-zcdp-vs-rdp exhaustion duel (plus the grouped parallel-vs-even-split duel) instead of the throughput run")
		grouped     = flag.Bool("grouped", false, "loadgen: GROUP BY workload — histograms, grouped queries, grouped estimates (parallel-composed releases)")
		budget      = flag.Float64("budget", 0.1, "compare: nominal total epsilon per twin tenant")
		restart     = flag.Bool("restart", false, "loadgen: run the durability recovery scenario (ingest+spend, snapshot, crash, re-open) instead of the throughput run")
		duel        = flag.Bool("duel", false, "loadgen: run the durable-vs-ephemeral duel (same distinct-release load with and without a data dir) instead of the throughput run")
		shardsFlag  = flag.String("shards", "", `loadgen: bench tenant table shard count (an integer), or "sweep" to run the shard-scaling sweep (N=1,4,16: ingest rows/sec + release latency)`)
		snapDuring  = flag.Bool("snapshot-during", false, "loadgen: run the compaction-stall drill (release p99 with continuous background compaction vs steady state); composes with -shards sweep")
		metricsOut  = flag.String("metrics-out", "", "loadgen: save the final /metrics scrape (Prometheus text) to this file")
		tracesOut   = flag.String("traces-out", "", "loadgen: save the post-run GET /v1/traces dump (flight-recorder JSON) to this file")
	)
	flag.Parse()

	if *serveTarget != "" {
		cfg := loadgenConfig{
			target:     *serveTarget,
			clients:    *clients,
			duration:   *duration,
			users:      *users,
			eps:        *loadEps,
			seed:       *seed,
			accounting: *accounting,
			delta:      *delta,
			window:     *window,
			budget:     *budget,
			grouped:    *grouped,
			metricsOut: *metricsOut,
			tracesOut:  *tracesOut,
		}
		sweep := false
		switch *shardsFlag {
		case "", "0":
		case "sweep":
			sweep = true
		default:
			n, err := strconv.Atoi(*shardsFlag)
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "updp-bench: -shards wants a positive integer or \"sweep\", got %q\n", *shardsFlag)
				os.Exit(2)
			}
			cfg.shards = n
		}
		modes := 0
		for _, on := range []bool{*compare, *restart, *duel, sweep, *snapDuring} {
			if on {
				modes++
			}
		}
		if *snapDuring && sweep {
			modes-- // -snapshot-during composes with -shards sweep (drill per shard count)
		}
		if modes > 1 {
			fmt.Fprintln(os.Stderr, "updp-bench: -compare, -restart, -duel, -snapshot-during, and -shards sweep are mutually exclusive scenarios (except -snapshot-during with -shards sweep); pick one")
			os.Exit(2)
		}
		var err error
		switch {
		case *compare:
			err = runCompare(cfg)
		case *restart:
			err = runRestart(cfg)
		case *duel:
			err = runDuel(cfg)
		case *snapDuring:
			counts := []int{1}
			if sweep {
				counts = []int{1, 4, 16}
			} else if cfg.shards > 0 {
				counts = []int{cfg.shards}
			}
			err = runSnapshotDuring(cfg, counts)
		case sweep:
			err = runShardSweep(cfg)
		default:
			err = runLoadgen(cfg)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "updp-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-4s %s\n     reproduces: %s\n", e.ID, e.Title, e.PaperRef)
		}
		return
	}

	var selected []harness.Experiment
	switch {
	case *all:
		selected = harness.All()
	case *expFlag != "":
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := harness.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "updp-bench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	default:
		fmt.Fprintln(os.Stderr, "updp-bench: pass -all, -exp <ids>, or -list")
		os.Exit(2)
	}

	cfg := harness.Config{Seed: *seed, Trials: *trials, Quick: *quick}
	for _, e := range selected {
		switch *format {
		case "md":
			fmt.Printf("### %s — %s\n\n", e.ID, e.Title)
			fmt.Printf("*Reproduces:* %s\n\n*Paper's prediction:* %s\n\n", e.PaperRef, e.Expect)
			for _, tb := range e.Run(cfg) {
				fmt.Println(tb.Markdown())
			}
		case "csv":
			for _, tb := range e.Run(cfg) {
				fmt.Printf("# %s: %s\n", e.ID, tb.Title)
				fmt.Print(tb.CSV())
			}
		case "text":
			fmt.Printf("=== %s — %s ===\n", e.ID, e.Title)
			fmt.Printf("reproduces: %s\nexpected:   %s\n\n", e.PaperRef, e.Expect)
			for _, tb := range e.Run(cfg) {
				fmt.Println(tb.Render())
			}
		default:
			fmt.Fprintf(os.Stderr, "updp-bench: unknown format %q\n", *format)
			os.Exit(2)
		}
	}
}
