package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/xrand"
)

// loadgenConfig parameterizes the service-level benchmark.
type loadgenConfig struct {
	target   string // "self" or a base URL like http://host:8500
	clients  int
	duration time.Duration
	users    int
	eps      float64 // per-release budget
	seed     uint64
}

// runLoadgen hammers an updp-serve instance with a mixed estimator/SQL
// workload and reports throughput and latency — the repository's
// service-level benchmark. With target "self" an in-process server is
// started on a loopback port so the benchmark is self-contained.
func runLoadgen(cfg loadgenConfig) error {
	base := cfg.target
	if cfg.target == "self" {
		// Queue sized to the offered concurrency so the benchmark measures
		// service throughput, not the load-shedder (which has its own test).
		srv := serve.New(serve.Options{Seed: cfg.seed, QueueDepth: 4 * cfg.clients})
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv}
		go func() { _ = hs.Serve(ln) }()
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "loadgen: in-process server at %s (workers=%d)\n", base, srv.Workers())
	}

	tenant := fmt.Sprintf("bench-%d", time.Now().UnixNano())
	hc := &http.Client{Timeout: 30 * time.Second}
	post := func(path string, body, out any) (int, error) {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		resp, err := hc.Post(base+path, "application/json", bytes.NewReader(b))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if out != nil && resp.StatusCode < 300 {
			return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}

	// Provision: tenant with an effectively bottomless budget (the
	// benchmark measures throughput, not refusals — those get their own
	// counter), one table, cfg.users users with two rows each.
	if code, err := post("/v1/tenants", serve.CreateTenantRequest{ID: tenant, Epsilon: 1e9}, nil); err != nil || code != http.StatusCreated {
		return fmt.Errorf("loadgen: creating tenant: code=%d err=%v", code, err)
	}
	if code, err := post("/v1/tenants/"+tenant+"/tables", serve.CreateTableRequest{
		Name: "metrics",
		Columns: []serve.ColumnSpec{
			{Name: "uid", Kind: "string"},
			{Name: "v", Kind: "float"},
			{Name: "grp", Kind: "string"},
		},
		UserColumn: "uid",
	}, nil); err != nil || code != http.StatusCreated {
		return fmt.Errorf("loadgen: creating table: code=%d err=%v", code, err)
	}
	rng := xrand.New(cfg.seed)
	groups := []string{"a", "b", "c"}
	const batch = 2000
	rows := make([][]any, 0, batch)
	flush := func() error {
		if len(rows) == 0 {
			return nil
		}
		code, err := post("/v1/tenants/"+tenant+"/tables/metrics/rows", serve.InsertRowsRequest{Rows: rows}, nil)
		if err != nil || code != http.StatusOK {
			return fmt.Errorf("loadgen: inserting rows: code=%d err=%v", code, err)
		}
		rows = rows[:0]
		return nil
	}
	for u := 0; u < cfg.users; u++ {
		uid := fmt.Sprintf("u%06d", u)
		g := groups[u%len(groups)]
		for r := 0; r < 2; r++ {
			rows = append(rows, []any{uid, 250 + 30*rng.Gaussian(), g})
			if len(rows) == batch {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}

	// Mixed workload: half SQL, half direct estimator releases.
	sqls := []string{
		"SELECT AVG(v) FROM metrics",
		"SELECT COUNT(*) FROM metrics",
		"SELECT MEDIAN(v) FROM metrics",
		"SELECT AVG(v) FROM metrics GROUP BY grp",
	}
	stats := []string{"mean", "median", "iqr", "variance"}

	type tally struct {
		ok, refused, shed, errs int
		lat                     []time.Duration
	}
	tallies := make([]tally, cfg.clients)
	deadline := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := &http.Client{Timeout: 30 * time.Second}
			ta := &tallies[c]
			for i := 0; time.Now().Before(deadline); i++ {
				var (
					path string
					body any
				)
				if (c+i)%2 == 0 {
					path = "/v1/tenants/" + tenant + "/query"
					body = serve.QueryRequest{SQL: sqls[i%len(sqls)], Epsilon: cfg.eps}
				} else {
					path = "/v1/tenants/" + tenant + "/estimate"
					body = serve.EstimateRequest{
						Table: "metrics", Column: "v",
						Stat: stats[i%len(stats)], Epsilon: cfg.eps,
					}
				}
				b, _ := json.Marshal(body)
				t0 := time.Now()
				resp, err := cl.Post(base+path, "application/json", bytes.NewReader(b))
				if err != nil {
					ta.errs++
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				ta.lat = append(ta.lat, time.Since(t0))
				switch resp.StatusCode {
				case http.StatusOK:
					ta.ok++
				case http.StatusTooManyRequests:
					ta.refused++
				case http.StatusServiceUnavailable:
					ta.shed++
				default:
					ta.errs++
				}
			}
		}(c)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed < cfg.duration {
		elapsed = cfg.duration
	}

	var total tally
	for _, ta := range tallies {
		total.ok += ta.ok
		total.refused += ta.refused
		total.shed += ta.shed
		total.errs += ta.errs
		total.lat = append(total.lat, ta.lat...)
	}
	sort.Slice(total.lat, func(i, j int) bool { return total.lat[i] < total.lat[j] })
	pct := func(p float64) time.Duration {
		if len(total.lat) == 0 {
			return 0
		}
		ix := int(math.Ceil(p*float64(len(total.lat)))) - 1
		if ix < 0 {
			ix = 0
		}
		return total.lat[ix]
	}
	n := total.ok + total.refused + total.shed + total.errs
	fmt.Printf("=== serve loadgen: %d clients, %v, %d users, eps/release=%g ===\n",
		cfg.clients, cfg.duration, cfg.users, cfg.eps)
	fmt.Printf("requests     %d (ok %d, budget-refused %d, shed %d, errors %d)\n",
		n, total.ok, total.refused, total.shed, total.errs)
	fmt.Printf("throughput   %.1f req/s\n", float64(n)/elapsed.Seconds())
	fmt.Printf("latency      p50 %v  p95 %v  p99 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))
	if total.errs > 0 {
		return fmt.Errorf("loadgen: %d requests errored", total.errs)
	}
	return nil
}
