package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/dp"
	"repro/internal/serve"
	"repro/internal/xrand"
)

// loadgenConfig parameterizes the service-level benchmark.
type loadgenConfig struct {
	target     string // "self" or a base URL like http://host:8500
	clients    int
	duration   time.Duration
	users      int
	eps        float64 // per-release budget
	seed       uint64
	accounting string  // bench tenant backend: "pure" or "zcdp"
	delta      float64 // zcdp delta (0 = server default)
	window     float64 // refill window seconds (0 = lifetime budget)
	budget     float64 // compare mode: nominal total eps per twin
	grouped    bool    // loadgen: GROUP BY workload (histogram + grouped query/estimate)
	shards     int     // bench tenant table shard count (0 = server default)
	metricsOut string  // save the final /metrics scrape here ("" = skip)
	tracesOut  string  // save the post-run GET /v1/traces dump here ("" = skip)
}

// selfServe starts an in-process server on a loopback port when target is
// "self", returning the base URL and a shutdown func.
func selfServe(cfg loadgenConfig) (string, func(), error) {
	if cfg.target != "self" {
		return cfg.target, func() {}, nil
	}
	// Queue sized to the offered concurrency so the benchmark measures
	// service throughput, not the load-shedder (which has its own test).
	srv := serve.New(serve.Options{Seed: cfg.seed, QueueDepth: 4 * cfg.clients})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return "", nil, err
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "loadgen: in-process server at %s (workers=%d)\n", base, srv.Workers())
	return base, func() { hs.Close(); srv.Close() }, nil
}

// jsonPost marshals body, posts it, and decodes a <300 reply into out.
func jsonPost(hc *http.Client, base, path string, body, out any) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := hc.Post(base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// provisionBench creates a tenant and fills its metrics table with
// cfg.users synthetic users (two rows each). The tenant inherits
// cfg.shards unless the request names its own topology.
func provisionBench(cfg loadgenConfig, hc *http.Client, base string, req serve.CreateTenantRequest) error {
	if req.Shards == 0 {
		req.Shards = cfg.shards
	}
	if code, err := jsonPost(hc, base, "/v1/tenants", req, nil); err != nil || code != http.StatusCreated {
		return fmt.Errorf("loadgen: creating tenant %s: code=%d err=%v", req.ID, code, err)
	}
	if code, err := jsonPost(hc, base, "/v1/tenants/"+req.ID+"/tables", serve.CreateTableRequest{
		Name: "metrics",
		Columns: []serve.ColumnSpec{
			{Name: "uid", Kind: "string"},
			{Name: "v", Kind: "float"},
			{Name: "grp", Kind: "string"},
		},
		UserColumn: "uid",
	}, nil); err != nil || code != http.StatusCreated {
		return fmt.Errorf("loadgen: creating table for %s: code=%d err=%v", req.ID, code, err)
	}
	rng := xrand.New(cfg.seed)
	groups := []string{"a", "b", "c"}
	const batch = 2000
	rows := make([][]any, 0, batch)
	flush := func() error {
		if len(rows) == 0 {
			return nil
		}
		code, err := jsonPost(hc, base, "/v1/tenants/"+req.ID+"/tables/metrics/rows", serve.InsertRowsRequest{Rows: rows}, nil)
		if err != nil || code != http.StatusOK {
			return fmt.Errorf("loadgen: inserting rows: code=%d err=%v", code, err)
		}
		rows = rows[:0]
		return nil
	}
	for u := 0; u < cfg.users; u++ {
		uid := fmt.Sprintf("u%06d", u)
		g := groups[u%len(groups)]
		for r := 0; r < 2; r++ {
			rows = append(rows, []any{uid, 250 + 30*rng.Gaussian(), g})
			if len(rows) == batch {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	return flush()
}

// runLoadgen hammers an updp-serve instance with a mixed estimator/SQL
// workload and reports throughput and latency — the repository's
// service-level benchmark. With target "self" an in-process server is
// started on a loopback port so the benchmark is self-contained.
func runLoadgen(cfg loadgenConfig) error {
	base, shutdown, err := selfServe(cfg)
	if err != nil {
		return err
	}
	defer shutdown()

	// Provision: tenant with an effectively bottomless budget (the
	// benchmark measures throughput, not refusals — those get their own
	// counter), one table, cfg.users users with two rows each. The
	// -accounting/-delta/-window flags pick the composition backend so
	// both ledgers see real service traffic.
	tenant := fmt.Sprintf("bench-%d", time.Now().UnixNano())
	hc := &http.Client{Timeout: 30 * time.Second}
	if err := provisionBench(cfg, hc, base, serve.CreateTenantRequest{
		ID:            tenant,
		Epsilon:       1e9,
		Accounting:    cfg.accounting,
		Delta:         cfg.delta,
		WindowSeconds: cfg.window,
	}); err != nil {
		return err
	}

	// Scrape /metrics after provisioning, before the workload: the deltas
	// against the post-run scrape attribute the run itself, not the setup
	// ingest, to stages.
	metBefore, _, err := scrapeMetrics(hc, base)
	if err != nil {
		return err
	}

	// Mixed workload: half SQL, half direct estimator releases. Half of
	// each client's requests are distinct (per-iteration WHERE bound /
	// quantile rank) so they exercise the mechanisms; the other half
	// repeat a small fixed set, exercising the response cache the way
	// dashboard-style traffic does. With -grouped the whole stream is
	// GROUP BY traffic instead — histograms, grouped queries, grouped
	// estimates — so every release runs the bounded-contribution grouped
	// scan and is priced by parallel composition; distinctness comes from
	// a relative 1e-12 budget jitter rather than a WHERE bound (grouped
	// releases have no free per-iteration predicate).
	sqls := []string{
		"SELECT AVG(v) FROM metrics",
		"SELECT COUNT(*) FROM metrics",
		"SELECT MEDIAN(v) FROM metrics",
		"SELECT AVG(v) FROM metrics GROUP BY grp",
	}
	stats := []string{"mean", "median", "iqr", "variance"}

	type tally struct {
		ok, refused, shed, errs int
		lat                     []time.Duration
	}
	tallies := make([]tally, cfg.clients)
	deadline := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := &http.Client{Timeout: 30 * time.Second}
			ta := &tallies[c]
			for i := 0; time.Now().Before(deadline); i++ {
				var (
					path string
					body any
				)
				distinct := i%4 >= 2
				if cfg.grouped {
					eps := cfg.eps
					if distinct {
						eps = cfg.eps * (1 + float64(c*100003+i)*1e-12)
					}
					switch i % 3 {
					case 0:
						path = "/v1/tenants/" + tenant + "/histogram"
						body = serve.HistogramRequest{Table: "metrics", GroupBy: "grp", Epsilon: eps}
					case 1:
						path = "/v1/tenants/" + tenant + "/query"
						body = serve.QueryRequest{SQL: "SELECT AVG(v) FROM metrics", GroupBy: "grp", Epsilon: eps}
					default:
						body = serve.EstimateRequest{
							Table: "metrics", Column: "v", Stat: "median",
							GroupBy: "grp", Epsilon: eps,
						}
						path = "/v1/tenants/" + tenant + "/estimate"
					}
				} else if (c+i)%2 == 0 {
					path = "/v1/tenants/" + tenant + "/query"
					sql := sqls[i%len(sqls)]
					if distinct {
						sql = fmt.Sprintf("SELECT AVG(v) FROM metrics WHERE v < %d", 100000+c*1000003+i)
					}
					body = serve.QueryRequest{SQL: sql, Epsilon: cfg.eps}
				} else {
					path = "/v1/tenants/" + tenant + "/estimate"
					req := serve.EstimateRequest{
						Table: "metrics", Column: "v",
						Stat: stats[i%len(stats)], Epsilon: cfg.eps,
					}
					if distinct {
						req.Stat = "quantile"
						req.P = 0.001 + 0.998*float64((c*7919+i)%9973)/9973
					}
					body = req
				}
				b, _ := json.Marshal(body)
				t0 := time.Now()
				resp, err := cl.Post(base+path, "application/json", bytes.NewReader(b))
				if err != nil {
					ta.errs++
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				ta.lat = append(ta.lat, time.Since(t0))
				switch resp.StatusCode {
				case http.StatusOK:
					ta.ok++
				case http.StatusTooManyRequests:
					ta.refused++
				case http.StatusServiceUnavailable:
					ta.shed++
				default:
					ta.errs++
				}
			}
		}(c)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed < cfg.duration {
		elapsed = cfg.duration
	}

	var total tally
	for _, ta := range tallies {
		total.ok += ta.ok
		total.refused += ta.refused
		total.shed += ta.shed
		total.errs += ta.errs
		total.lat = append(total.lat, ta.lat...)
	}
	sort.Slice(total.lat, func(i, j int) bool { return total.lat[i] < total.lat[j] })
	pct := func(p float64) time.Duration {
		if len(total.lat) == 0 {
			return 0
		}
		ix := int(math.Ceil(p*float64(len(total.lat)))) - 1
		if ix < 0 {
			ix = 0
		}
		return total.lat[ix]
	}
	n := total.ok + total.refused + total.shed + total.errs
	workload := "mixed"
	if cfg.grouped {
		workload = "grouped"
	}
	fmt.Printf("=== serve loadgen: %d clients, %v, %d users, eps/release=%g, accounting=%s, workload=%s ===\n",
		cfg.clients, cfg.duration, cfg.users, cfg.eps, cfg.accounting, workload)
	fmt.Printf("requests     %d (ok %d, budget-refused %d, shed %d, errors %d)\n",
		n, total.ok, total.refused, total.shed, total.errs)
	fmt.Printf("throughput   %.1f req/s\n", float64(n)/elapsed.Seconds())
	fmt.Printf("latency      p50 %v  p95 %v  p99 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))
	if st, err := fetchStats(hc, base); err == nil {
		fmt.Printf("cache        %d hits, %d misses (hits are budget-free replays)\n",
			st.CacheHits, st.CacheMisses)
		if cfg.grouped {
			fmt.Printf("releases     %d histograms, %d queries, %d estimates (each grouped release = ONE parallel-composed deduction)\n",
				st.Histograms, st.Queries, st.Estimates)
		}
	}
	// The server's own per-stage histograms say where the latency went —
	// queue wait vs scan vs noise vs deduct — no client-side guessing.
	metAfter, raw, err := scrapeMetrics(hc, base)
	if err != nil {
		return err
	}
	printStageBreakdown(metBefore, metAfter)
	if err := writeMetricsOut(cfg.metricsOut, raw); err != nil {
		return err
	}
	if err := writeTracesOut(hc, base, cfg.tracesOut); err != nil {
		return err
	}
	if total.errs > 0 {
		return fmt.Errorf("loadgen: %d requests errored", total.errs)
	}
	return nil
}

// runRestart is the durability recovery scenario: a durable server is
// provisioned and spent against over HTTP, compacted once mid-stream (so
// recovery exercises snapshot + WAL tail, not just one of them), then
// abandoned WITHOUT a flush — simulating a crash. A second server opened
// on the same data dir must answer queries from the recovered data and
// report spend at least the pre-crash spend (never refilled); the report
// includes the recovery wall-time.
func runRestart(cfg loadgenConfig) error {
	if cfg.target != "self" {
		return fmt.Errorf("loadgen: -restart needs -serve self (it owns the data dir and the crash)")
	}
	if cfg.window > 0 {
		// A windowed ledger's Spent legitimately drops to zero when a
		// refill boundary passes during the drill, so "recovered spend >=
		// pre-crash spend" is not the invariant to assert for it.
		return fmt.Errorf("loadgen: -restart asserts lifetime-spend carry-over; drop -window")
	}
	dir, err := os.MkdirTemp("", "updp-restart-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	openOn := func(seed uint64) (*serve.Server, string, func(), error) {
		srv, err := serve.Open(serve.Options{Seed: seed, DataDir: dir})
		if err != nil {
			return nil, "", nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			return nil, "", nil, err
		}
		hs := &http.Server{Handler: srv}
		go func() { _ = hs.Serve(ln) }()
		return srv, "http://" + ln.Addr().String(), func() { hs.Close() }, nil
	}

	// Phase 1: provision, spend, compact once, spend more, crash.
	srvA, base, stopA, err := openOn(cfg.seed)
	if err != nil {
		return err
	}
	hc := &http.Client{Timeout: 30 * time.Second}
	const tenant = "restart"
	if err := provisionBench(cfg, hc, base, serve.CreateTenantRequest{
		ID:            tenant,
		Epsilon:       1e6,
		Accounting:    cfg.accounting,
		Delta:         cfg.delta,
		WindowSeconds: cfg.window,
	}); err != nil {
		stopA()
		return err
	}
	const releases = 120
	release := func(i int) error {
		p := 0.001 + 0.998*float64(i%9973)/9973
		code, err := jsonPost(hc, base, "/v1/tenants/"+tenant+"/estimate", serve.EstimateRequest{
			Table: "metrics", Column: "v", Stat: "quantile", P: p, Epsilon: cfg.eps,
		}, nil)
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("loadgen: release %d: HTTP %d", i, code)
		}
		return nil
	}
	for i := 0; i < releases/2; i++ {
		if err := release(i); err != nil {
			stopA()
			return err
		}
	}
	if err := srvA.Flush(); err != nil { // compacted snapshot mid-stream
		stopA()
		return err
	}
	for i := releases / 2; i < releases; i++ {
		if err := release(i); err != nil {
			stopA()
			return err
		}
	}
	before, err := fetchTenantStatus(hc, base, tenant)
	if err != nil {
		stopA()
		return err
	}
	if before.Spent <= 0 {
		stopA()
		return fmt.Errorf("loadgen: pre-crash spend is %v — the drill did not actually spend", before.Spent)
	}
	// Crash: stop the listener, never call srv.Close() — no final flush,
	// the WAL tail past the snapshot is all the second boot gets.
	stopA()

	// Phase 2: recover and verify.
	t0 := time.Now()
	srvB, base2, stopB, err := openOn(cfg.seed + 1)
	if err != nil {
		return fmt.Errorf("loadgen: recovery failed: %w", err)
	}
	recovery := time.Since(t0)
	defer stopB()
	defer srvB.Close()
	after, err := fetchTenantStatus(hc, base2, tenant)
	if err != nil {
		return err
	}
	if after.Spent < before.Spent {
		return fmt.Errorf("loadgen: RECOVERY BUG: spend regressed %v -> %v (%s) — budget partially refilled",
			before.Spent, after.Spent, after.Unit)
	}
	// ε=2 keeps the COUNT's noise at scale 1/2 so the report visibly shows
	// the recovered rows (the throughput releases use cfg.eps).
	var q serve.QueryResponse
	code, err := jsonPost(hc, base2, "/v1/tenants/"+tenant+"/query", serve.QueryRequest{
		SQL: "SELECT COUNT(*) FROM metrics", Epsilon: 2,
	}, &q)
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("loadgen: post-recovery query: code=%d err=%v", code, err)
	}

	fmt.Printf("=== restart recovery: %d users, %d releases (snapshot after %d), accounting=%s ===\n",
		cfg.users, releases, releases/2, cfg.accounting)
	fmt.Printf("spend        pre-crash %.6g %s -> recovered %.6g %s (eps view %.4g -> %.4g)\n",
		before.Spent, before.Unit, after.Spent, after.Unit, before.SpentEpsilon, after.SpentEpsilon)
	fmt.Printf("data         post-recovery COUNT(*) ~ %.0f (true %d users, %d rows)\n",
		q.Rows[0].Values[0], cfg.users, 2*cfg.users)
	fmt.Printf("recovery     %v wall-time (snapshot + WAL tail replay)\n", recovery.Round(time.Microsecond))
	fmt.Printf("invariant    recovered spend >= pre-crash spend: OK (never refilled)\n")
	return nil
}

// fetchTenantStatus pulls one tenant's status, refusing a non-200 so an
// error body can never decode into a zero status and vacuously satisfy
// the drill's spend assertions.
func fetchTenantStatus(hc *http.Client, base, tenant string) (serve.TenantStatus, error) {
	var st serve.TenantStatus
	resp, err := hc.Get(base + "/v1/tenants/" + tenant)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("loadgen: tenant status for %s: HTTP %d", tenant, resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// fetchStats pulls /v1/stats.
func fetchStats(hc *http.Client, base string) (serve.ServerStats, error) {
	var st serve.ServerStats
	resp, err := hc.Get(base + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// duelTwin is one contestant in the exhaustion duel: a tenant
// configuration plus how its backend takes the workload's Gaussian
// count releases (natively in ρ, or through Laplace in ε when the
// backend cannot represent the Gaussian at all). New backends join the
// duel by appending a row — the table printer and the loop are N-ary.
type duelTwin struct {
	label     string
	req       serve.CreateTenantRequest
	rhoNative bool
	note      string
}

// duelStream sends the shared mixed Laplace+Gaussian stream to one twin
// until it hits 429, returning how many releases it sustained: the
// stream alternates distinct quantile releases (Laplace at ε₀, first)
// with Gaussian counts at the matched zCDP price ρ₀ = ε₀²/2 (Laplace at
// ε₀ for twins whose backend cannot price a Gaussian). Every request is
// byte-distinct — varying quantile ranks, a relative 1e-9 jitter on the
// count budgets — so no release is a free cache replay.
func duelStream(hc *http.Client, base, tenant string, eps float64, rhoNative bool) (int, error) {
	const maxTries = 100000
	rho0 := eps * eps / 2
	for i := 0; i < maxTries; i++ {
		var req serve.EstimateRequest
		if i%2 == 1 {
			jitter := 1 + float64(i)*1e-9
			if rhoNative {
				req = serve.EstimateRequest{Table: "metrics", Stat: "count", Rho: rho0 * jitter}
			} else {
				req = serve.EstimateRequest{Table: "metrics", Stat: "count", Epsilon: eps * jitter}
			}
		} else {
			p := 0.001 + 0.998*float64(i%99991)/99991
			req = serve.EstimateRequest{Table: "metrics", Column: "v", Stat: "quantile", P: p, Epsilon: eps}
		}
		code, err := jsonPost(hc, base, "/v1/tenants/"+tenant+"/estimate", req, nil)
		if err != nil {
			return i, err
		}
		switch code {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			return i, nil
		default:
			return i, fmt.Errorf("loadgen: %s release %d: HTTP %d", tenant, i, code)
		}
	}
	return maxTries, nil
}

// runCompare is the backend exhaustion duel: twin tenants with the same
// nominal (ε, δ) budget — basic composition, zCDP, and Rényi (RDP) —
// receive the same mixed stream of distinct small releases until each
// hits 429. Basic composition affords budget/ε₀ releases; zCDP affords
// rho(budget, δ)/(ε₀²/2), quadratically more; RDP prices the Laplace
// half of the stream below zCDP's ε²/2 line (and the Gaussian half
// identically), so it sustains the most. The rdp twin's order grid is
// picked with dp.RDPOrdersFor so it brackets the optimal conversion
// order for the nominal budget — the default grid tops out at α=64,
// which is too low for small ε at small δ (see docs/ACCOUNTING.md). A
// final, windowed twin shows the renewable budget recovering from 429
// after one window tick.
func runCompare(cfg loadgenConfig) error {
	base, shutdown, err := selfServe(cfg)
	if err != nil {
		return err
	}
	defer shutdown()
	hc := &http.Client{Timeout: 30 * time.Second}

	delta := cfg.delta
	if delta == 0 {
		delta = 1e-6
	}
	ts := time.Now().UnixNano()
	twins := []duelTwin{
		{
			label: "pure-eps",
			req:   serve.CreateTenantRequest{Epsilon: cfg.budget},
			note:  "basic composition: eps/release adds up (counts via Laplace)",
		},
		{
			label:     "zcdp",
			req:       serve.CreateTenantRequest{Epsilon: cfg.budget, Accounting: "zcdp", Delta: cfg.delta},
			rhoNative: true,
			note:      "each Laplace release costs eps^2/2 in rho, counts rho directly",
		},
		{
			label:     "rdp",
			req:       serve.CreateTenantRequest{Epsilon: cfg.budget, Accounting: "rdp", Delta: cfg.delta, Orders: dp.RDPOrdersFor(cfg.budget, delta)},
			rhoNative: true,
			note:      "full Renyi curves per release, optimal (eps, delta) conversion",
		},
	}
	for i := range twins {
		twins[i].req.ID = fmt.Sprintf("cmp-%s-%d", twins[i].label, ts)
		if err := provisionBench(cfg, hc, base, twins[i].req); err != nil {
			return err
		}
	}

	t0 := time.Now()
	counts := make([]int, len(twins))
	for i, tw := range twins {
		if counts[i], err = duelStream(hc, base, tw.req.ID, cfg.eps, tw.rhoNative); err != nil {
			return err
		}
	}

	fmt.Printf("=== accounting duel: nominal eps=%g (delta=%g), per-release eps=%g, mixed Laplace+Gaussian, %d users ===\n",
		cfg.budget, delta, cfg.eps, cfg.users)
	for i, tw := range twins {
		adv := ""
		if i > 0 && counts[0] > 0 {
			adv = fmt.Sprintf("  %.1fx vs %s", float64(counts[i])/float64(counts[0]), twins[0].label)
		}
		fmt.Printf("%-9s %6d releases before 429%s\n           (%s)\n", tw.label, counts[i], adv, tw.note)
	}
	fmt.Printf("elapsed      %v\n", time.Since(t0).Round(time.Millisecond))

	// Renewable budgets: a windowed twin comes back after one tick.
	windowed := fmt.Sprintf("cmp-win-%d", ts)
	const winSecs = 1.0
	if err := provisionBench(cfg, hc, base, serve.CreateTenantRequest{
		ID: windowed, Epsilon: cfg.budget, WindowSeconds: winSecs,
	}); err != nil {
		return err
	}
	if n, err := duelStream(hc, base, windowed, cfg.eps, false); err != nil {
		return err
	} else {
		fmt.Printf("windowed     %6d releases, then 429\n", n)
	}
	time.Sleep(time.Duration(winSecs*float64(time.Second)) + 200*time.Millisecond)
	code, err := jsonPost(hc, base, "/v1/tenants/"+windowed+"/estimate", serve.EstimateRequest{
		Table: "metrics", Column: "v", Stat: "median", Epsilon: cfg.eps,
	}, nil)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("loadgen: windowed tenant did not recover after its window (HTTP %d)", code)
	}
	fmt.Printf("windowed     recovered after one %gs window tick (budget refilled)\n", winSecs)

	// Grouped duel: parallel composition vs legacy even-split pricing at
	// EQUAL per-group accuracy. The bench table has k=3 groups. The
	// parallel twin releases histograms at the default contribution bound
	// (1): groups partition users, each bucket gets the full ε₀ of noise
	// protection, and the whole histogram costs ε₀. The even-split twin
	// asks for the same per-bucket accuracy through the unbounded legacy
	// mode (contribution_bound -1, budget split ε/k per group), so it must
	// request — and is charged — k·ε₀ per histogram. Same accuracy, k×
	// the price: the parallel twin sustains ~k× the releases before 429.
	const kGroups = 3
	gTwins := []struct {
		label string
		eps   float64
		bound int
	}{
		{"grp-par", cfg.eps, 0},
		{"grp-even", kGroups * cfg.eps, -1},
	}
	gCounts := make([]int, len(gTwins))
	for i, tw := range gTwins {
		id := fmt.Sprintf("cmp-%s-%d", tw.label, ts)
		if err := provisionBench(cfg, hc, base, serve.CreateTenantRequest{ID: id, Epsilon: cfg.budget}); err != nil {
			return err
		}
		if gCounts[i], err = groupedStream(hc, base, id, tw.eps, tw.bound); err != nil {
			return err
		}
	}
	fmt.Printf("=== grouped duel: %d-bucket histograms at equal per-bucket accuracy (eps_g=%g), nominal eps=%g ===\n",
		kGroups, cfg.eps, cfg.budget)
	fmt.Printf("%-9s %6d releases before 429\n           (parallel composition: whole histogram priced as one release)\n",
		gTwins[0].label, gCounts[0])
	adv := ""
	if gCounts[1] > 0 {
		adv = fmt.Sprintf("  parallel sustains %.1fx", float64(gCounts[0])/float64(gCounts[1]))
	}
	fmt.Printf("%-9s %6d releases before 429%s\n           (legacy even-split: eps/k per bucket, so equal accuracy costs k*eps)\n",
		gTwins[1].label, gCounts[1], adv)
	return nil
}

// groupedStream sends byte-distinct histogram releases (a relative 1e-9
// budget jitter) to one tenant until it hits 429, returning how many it
// sustained. bound is the contribution bound to request: 0 for the
// default (clamped, parallel-composed), -1 for the legacy even-split.
func groupedStream(hc *http.Client, base, tenant string, eps float64, bound int) (int, error) {
	const maxTries = 100000
	for i := 0; i < maxTries; i++ {
		jitter := 1 + float64(i)*1e-9
		code, err := jsonPost(hc, base, "/v1/tenants/"+tenant+"/histogram", serve.HistogramRequest{
			Table: "metrics", GroupBy: "grp", Epsilon: eps * jitter, ContributionBound: bound,
		}, nil)
		if err != nil {
			return i, err
		}
		switch code {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			return i, nil
		default:
			return i, fmt.Errorf("loadgen: %s histogram %d: HTTP %d", tenant, i, code)
		}
	}
	return maxTries, nil
}
