package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/xrand"
)

// loadgenConfig parameterizes the service-level benchmark.
type loadgenConfig struct {
	target     string // "self" or a base URL like http://host:8500
	clients    int
	duration   time.Duration
	users      int
	eps        float64 // per-release budget
	seed       uint64
	accounting string  // bench tenant backend: "pure" or "zcdp"
	delta      float64 // zcdp delta (0 = server default)
	window     float64 // refill window seconds (0 = lifetime budget)
	budget     float64 // compare mode: nominal total eps per twin
}

// selfServe starts an in-process server on a loopback port when target is
// "self", returning the base URL and a shutdown func.
func selfServe(cfg loadgenConfig) (string, func(), error) {
	if cfg.target != "self" {
		return cfg.target, func() {}, nil
	}
	// Queue sized to the offered concurrency so the benchmark measures
	// service throughput, not the load-shedder (which has its own test).
	srv := serve.New(serve.Options{Seed: cfg.seed, QueueDepth: 4 * cfg.clients})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return "", nil, err
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "loadgen: in-process server at %s (workers=%d)\n", base, srv.Workers())
	return base, func() { hs.Close(); srv.Close() }, nil
}

// jsonPost marshals body, posts it, and decodes a <300 reply into out.
func jsonPost(hc *http.Client, base, path string, body, out any) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := hc.Post(base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// provisionBench creates a tenant and fills its metrics table with
// cfg.users synthetic users (two rows each).
func provisionBench(cfg loadgenConfig, hc *http.Client, base string, req serve.CreateTenantRequest) error {
	if code, err := jsonPost(hc, base, "/v1/tenants", req, nil); err != nil || code != http.StatusCreated {
		return fmt.Errorf("loadgen: creating tenant %s: code=%d err=%v", req.ID, code, err)
	}
	if code, err := jsonPost(hc, base, "/v1/tenants/"+req.ID+"/tables", serve.CreateTableRequest{
		Name: "metrics",
		Columns: []serve.ColumnSpec{
			{Name: "uid", Kind: "string"},
			{Name: "v", Kind: "float"},
			{Name: "grp", Kind: "string"},
		},
		UserColumn: "uid",
	}, nil); err != nil || code != http.StatusCreated {
		return fmt.Errorf("loadgen: creating table for %s: code=%d err=%v", req.ID, code, err)
	}
	rng := xrand.New(cfg.seed)
	groups := []string{"a", "b", "c"}
	const batch = 2000
	rows := make([][]any, 0, batch)
	flush := func() error {
		if len(rows) == 0 {
			return nil
		}
		code, err := jsonPost(hc, base, "/v1/tenants/"+req.ID+"/tables/metrics/rows", serve.InsertRowsRequest{Rows: rows}, nil)
		if err != nil || code != http.StatusOK {
			return fmt.Errorf("loadgen: inserting rows: code=%d err=%v", code, err)
		}
		rows = rows[:0]
		return nil
	}
	for u := 0; u < cfg.users; u++ {
		uid := fmt.Sprintf("u%06d", u)
		g := groups[u%len(groups)]
		for r := 0; r < 2; r++ {
			rows = append(rows, []any{uid, 250 + 30*rng.Gaussian(), g})
			if len(rows) == batch {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	return flush()
}

// runLoadgen hammers an updp-serve instance with a mixed estimator/SQL
// workload and reports throughput and latency — the repository's
// service-level benchmark. With target "self" an in-process server is
// started on a loopback port so the benchmark is self-contained.
func runLoadgen(cfg loadgenConfig) error {
	base, shutdown, err := selfServe(cfg)
	if err != nil {
		return err
	}
	defer shutdown()

	// Provision: tenant with an effectively bottomless budget (the
	// benchmark measures throughput, not refusals — those get their own
	// counter), one table, cfg.users users with two rows each. The
	// -accounting/-delta/-window flags pick the composition backend so
	// both ledgers see real service traffic.
	tenant := fmt.Sprintf("bench-%d", time.Now().UnixNano())
	hc := &http.Client{Timeout: 30 * time.Second}
	if err := provisionBench(cfg, hc, base, serve.CreateTenantRequest{
		ID:            tenant,
		Epsilon:       1e9,
		Accounting:    cfg.accounting,
		Delta:         cfg.delta,
		WindowSeconds: cfg.window,
	}); err != nil {
		return err
	}

	// Mixed workload: half SQL, half direct estimator releases. Half of
	// each client's requests are distinct (per-iteration WHERE bound /
	// quantile rank) so they exercise the mechanisms; the other half
	// repeat a small fixed set, exercising the response cache the way
	// dashboard-style traffic does.
	sqls := []string{
		"SELECT AVG(v) FROM metrics",
		"SELECT COUNT(*) FROM metrics",
		"SELECT MEDIAN(v) FROM metrics",
		"SELECT AVG(v) FROM metrics GROUP BY grp",
	}
	stats := []string{"mean", "median", "iqr", "variance"}

	type tally struct {
		ok, refused, shed, errs int
		lat                     []time.Duration
	}
	tallies := make([]tally, cfg.clients)
	deadline := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := &http.Client{Timeout: 30 * time.Second}
			ta := &tallies[c]
			for i := 0; time.Now().Before(deadline); i++ {
				var (
					path string
					body any
				)
				distinct := i%4 >= 2
				if (c+i)%2 == 0 {
					path = "/v1/tenants/" + tenant + "/query"
					sql := sqls[i%len(sqls)]
					if distinct {
						sql = fmt.Sprintf("SELECT AVG(v) FROM metrics WHERE v < %d", 100000+c*1000003+i)
					}
					body = serve.QueryRequest{SQL: sql, Epsilon: cfg.eps}
				} else {
					path = "/v1/tenants/" + tenant + "/estimate"
					req := serve.EstimateRequest{
						Table: "metrics", Column: "v",
						Stat: stats[i%len(stats)], Epsilon: cfg.eps,
					}
					if distinct {
						req.Stat = "quantile"
						req.P = 0.001 + 0.998*float64((c*7919+i)%9973)/9973
					}
					body = req
				}
				b, _ := json.Marshal(body)
				t0 := time.Now()
				resp, err := cl.Post(base+path, "application/json", bytes.NewReader(b))
				if err != nil {
					ta.errs++
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				ta.lat = append(ta.lat, time.Since(t0))
				switch resp.StatusCode {
				case http.StatusOK:
					ta.ok++
				case http.StatusTooManyRequests:
					ta.refused++
				case http.StatusServiceUnavailable:
					ta.shed++
				default:
					ta.errs++
				}
			}
		}(c)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed < cfg.duration {
		elapsed = cfg.duration
	}

	var total tally
	for _, ta := range tallies {
		total.ok += ta.ok
		total.refused += ta.refused
		total.shed += ta.shed
		total.errs += ta.errs
		total.lat = append(total.lat, ta.lat...)
	}
	sort.Slice(total.lat, func(i, j int) bool { return total.lat[i] < total.lat[j] })
	pct := func(p float64) time.Duration {
		if len(total.lat) == 0 {
			return 0
		}
		ix := int(math.Ceil(p*float64(len(total.lat)))) - 1
		if ix < 0 {
			ix = 0
		}
		return total.lat[ix]
	}
	n := total.ok + total.refused + total.shed + total.errs
	fmt.Printf("=== serve loadgen: %d clients, %v, %d users, eps/release=%g, accounting=%s ===\n",
		cfg.clients, cfg.duration, cfg.users, cfg.eps, cfg.accounting)
	fmt.Printf("requests     %d (ok %d, budget-refused %d, shed %d, errors %d)\n",
		n, total.ok, total.refused, total.shed, total.errs)
	fmt.Printf("throughput   %.1f req/s\n", float64(n)/elapsed.Seconds())
	fmt.Printf("latency      p50 %v  p95 %v  p99 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))
	if st, err := fetchStats(hc, base); err == nil {
		fmt.Printf("cache        %d hits, %d misses (hits are budget-free replays)\n",
			st.CacheHits, st.CacheMisses)
	}
	if total.errs > 0 {
		return fmt.Errorf("loadgen: %d requests errored", total.errs)
	}
	return nil
}

// fetchStats pulls /v1/stats.
func fetchStats(hc *http.Client, base string) (serve.ServerStats, error) {
	var st serve.ServerStats
	resp, err := hc.Get(base + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// runCompare is the backend exhaustion duel: twin tenants with the same
// nominal (ε, δ = 1e-6) budget — one under basic composition, one under
// zCDP — receive the identical stream of distinct small releases until
// each hits 429. Basic composition affords budget/eps releases; zCDP
// affords rho(budget, δ)/(eps²/2), which for small per-release ε is far
// more. A third, windowed twin shows the renewable budget recovering from
// 429 after one window tick.
func runCompare(cfg loadgenConfig) error {
	base, shutdown, err := selfServe(cfg)
	if err != nil {
		return err
	}
	defer shutdown()
	hc := &http.Client{Timeout: 30 * time.Second}

	ts := time.Now().UnixNano()
	pure := fmt.Sprintf("cmp-pure-%d", ts)
	zcdp := fmt.Sprintf("cmp-zcdp-%d", ts)
	for _, req := range []serve.CreateTenantRequest{
		{ID: pure, Epsilon: cfg.budget},
		{ID: zcdp, Epsilon: cfg.budget, Accounting: "zcdp"},
	} {
		if err := provisionBench(cfg, hc, base, req); err != nil {
			return err
		}
	}

	// Identical distinct releases (varying quantile rank defeats the
	// free-replay cache: cached answers would never exhaust anything).
	const maxTries = 100000
	sustained := func(tenant string) (int, error) {
		for i := 0; i < maxTries; i++ {
			p := 0.001 + 0.998*float64(i%99991)/99991
			code, err := jsonPost(hc, base, "/v1/tenants/"+tenant+"/estimate", serve.EstimateRequest{
				Table: "metrics", Column: "v", Stat: "quantile", P: p, Epsilon: cfg.eps,
			}, nil)
			if err != nil {
				return i, err
			}
			switch code {
			case http.StatusOK:
			case http.StatusTooManyRequests:
				return i, nil
			default:
				return i, fmt.Errorf("loadgen: %s release %d: HTTP %d", tenant, i, code)
			}
		}
		return maxTries, nil
	}
	t0 := time.Now()
	nPure, err := sustained(pure)
	if err != nil {
		return err
	}
	nZCDP, err := sustained(zcdp)
	if err != nil {
		return err
	}

	fmt.Printf("=== accounting duel: nominal eps=%g (delta=1e-6), per-release eps=%g, %d users ===\n",
		cfg.budget, cfg.eps, cfg.users)
	fmt.Printf("pure-eps     %6d releases before 429 (basic composition: eps/release adds up)\n", nPure)
	fmt.Printf("zcdp         %6d releases before 429 (each costs eps^2/2 in rho)\n", nZCDP)
	if nPure > 0 {
		fmt.Printf("advantage    %.1fx more releases from the same nominal budget\n",
			float64(nZCDP)/float64(nPure))
	}
	fmt.Printf("elapsed      %v\n", time.Since(t0).Round(time.Millisecond))

	// Renewable budgets: a windowed twin comes back after one tick.
	windowed := fmt.Sprintf("cmp-win-%d", ts)
	const winSecs = 1.0
	if err := provisionBench(cfg, hc, base, serve.CreateTenantRequest{
		ID: windowed, Epsilon: cfg.budget, WindowSeconds: winSecs,
	}); err != nil {
		return err
	}
	if n, err := sustained(windowed); err != nil {
		return err
	} else {
		fmt.Printf("windowed     %6d releases, then 429\n", n)
	}
	time.Sleep(time.Duration(winSecs*float64(time.Second)) + 200*time.Millisecond)
	code, err := jsonPost(hc, base, "/v1/tenants/"+windowed+"/estimate", serve.EstimateRequest{
		Table: "metrics", Column: "v", Stat: "median", Epsilon: cfg.eps,
	}, nil)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("loadgen: windowed tenant did not recover after its window (HTTP %d)", code)
	}
	fmt.Printf("windowed     recovered after one %gs window tick (budget refilled)\n", winSecs)
	return nil
}
