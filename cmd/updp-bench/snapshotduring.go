package main

import (
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

// runSnapshotDuring is the direct measurement of the stall that off-path
// compaction removes: a durable tenant takes a steady stream of distinct
// (cache-defeating) releases, first with no compaction at all, then with
// compactions firing continuously in the background. Because compaction
// replays sealed immutable WAL segments without the persist lock or the
// shard locks, the two phases should show the same release latency — the
// during/steady p99 ratio printed at the end is the number to watch. The
// old synchronous snapshot path held the tenant's persist lock for the
// whole serialize+fsync, which parked every release behind it.
//
// Combined with -shards sweep the drill runs once per shard count in
// {1, 4, 16}; alone it uses -shards (or the server default of 1).
func runSnapshotDuring(cfg loadgenConfig, counts []int) error {
	if cfg.target != "self" {
		return fmt.Errorf("loadgen: -snapshot-during needs -serve self (it owns the data dir and fires compactions in-process)")
	}
	type result struct {
		shards                 int
		steadyP50, steadyP99   time.Duration
		duringP50, duringP99   time.Duration
		compactions            int
		meanCompact            time.Duration
		steadyRate, duringRate float64 // releases/sec
	}
	var rows []result
	for _, n := range counts {
		r := result{shards: n}
		var err error
		r.steadyP50, r.steadyP99, r.steadyRate,
			r.duringP50, r.duringP99, r.duringRate,
			r.compactions, r.meanCompact, err = snapDuringOne(cfg, n)
		if err != nil {
			return err
		}
		rows = append(rows, r)
	}

	fmt.Printf("=== snapshot-during: %d clients, %v per phase, %d users, eps/release=%g ===\n",
		cfg.clients, cfg.duration, cfg.users, cfg.eps)
	fmt.Printf("%-8s %12s %12s %12s %12s %10s %12s %13s\n",
		"shards", "steady p50", "steady p99", "during p50", "during p99", "p99 ratio", "compactions", "mean compact")
	for _, r := range rows {
		ratio := math.Inf(1)
		if r.steadyP99 > 0 {
			ratio = float64(r.duringP99) / float64(r.steadyP99)
		}
		fmt.Printf("%-8d %12v %12v %12v %12v %9.2fx %12d %13v\n",
			r.shards,
			r.steadyP50.Round(time.Microsecond), r.steadyP99.Round(time.Microsecond),
			r.duringP50.Round(time.Microsecond), r.duringP99.Round(time.Microsecond),
			ratio, r.compactions, r.meanCompact.Round(time.Microsecond))
	}
	fmt.Println("steady is release latency with no compaction; during is the same stream with background")
	fmt.Println("compactions (seal tail -> replay sealed segments -> publish snapshot) firing throughout the")
	fmt.Println("phase. Compaction never takes the persist lock or the shard locks, so with a spare core for")
	fmt.Println("the compactor the p99 ratio should sit at ~1.00x — sustained excess there means hot-path")
	fmt.Println("work is leaking into the compactor's brief seal/install windows. On a single-core machine")
	fmt.Println("the ratio instead measures CPU competition from the replay itself (GOMAXPROCS(0)=" + fmt.Sprint(runtime.GOMAXPROCS(0)) + " here).")
	return nil
}

// snapDuringOne runs both phases for one shard count on a fresh durable
// server and returns (steady p50, p99, rate, during p50, p99, rate,
// compactions completed, mean compaction wall-time).
func snapDuringOne(cfg loadgenConfig, shards int) (time.Duration, time.Duration, float64, time.Duration, time.Duration, float64, int, time.Duration, error) {
	fail := func(err error) (time.Duration, time.Duration, float64, time.Duration, time.Duration, float64, int, time.Duration, error) {
		return 0, 0, 0, 0, 0, 0, 0, 0, err
	}
	dir, err := os.MkdirTemp("", "updp-snapduring-")
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(dir)

	// SnapshotEvery is pushed out of reach so the steady phase is truly
	// compaction-free and the during phase's compactions are exactly the
	// ones the drill fires.
	srv, err := serve.Open(serve.Options{
		Seed:          cfg.seed,
		DataDir:       dir,
		QueueDepth:    4 * cfg.clients,
		SnapshotEvery: 1 << 30,
	})
	if err != nil {
		return fail(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	hc := &http.Client{Timeout: 30 * time.Second}

	tenant := fmt.Sprintf("snapdrill-%d", shards)
	if err := provisionBench(cfg, hc, base, serve.CreateTenantRequest{
		ID: tenant, Epsilon: 1e9, Shards: shards,
		Accounting: cfg.accounting, Delta: cfg.delta, WindowSeconds: cfg.window,
	}); err != nil {
		return fail(err)
	}

	// phase hammers the tenant with distinct quantile releases (every one
	// charges, WAL-commits, and audits — no free cache replays) from
	// cfg.clients concurrent clients for cfg.duration, returning sorted
	// latencies. salt keeps the two phases' quantile ranks disjoint.
	phase := func(salt int, dur time.Duration) ([]time.Duration, float64, error) {
		var (
			mu   sync.Mutex
			lats []time.Duration
			errs int32
		)
		deadline := time.Now().Add(dur)
		var wg sync.WaitGroup
		for c := 0; c < cfg.clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				cl := &http.Client{Timeout: 30 * time.Second}
				var own []time.Duration
				for i := 0; time.Now().Before(deadline); i++ {
					p := 0.001 + 0.998*float64((salt*31+c*7919+i)%9973)/9973
					t0 := time.Now()
					code, err := jsonPost(cl, base, "/v1/tenants/"+tenant+"/estimate", serve.EstimateRequest{
						Table: "metrics", Column: "v", Stat: "quantile", P: p, Epsilon: cfg.eps,
					}, nil)
					if err != nil || code != http.StatusOK {
						atomic.AddInt32(&errs, 1)
						continue
					}
					own = append(own, time.Since(t0))
				}
				mu.Lock()
				lats = append(lats, own...)
				mu.Unlock()
			}(c)
		}
		t0 := time.Now()
		wg.Wait()
		elapsed := time.Since(t0).Seconds()
		if n := atomic.LoadInt32(&errs); n > 0 {
			return nil, 0, fmt.Errorf("loadgen: snapshot-during: %d releases failed", n)
		}
		if len(lats) == 0 {
			return nil, 0, fmt.Errorf("loadgen: snapshot-during: phase completed no releases; raise -duration")
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats, float64(len(lats)) / elapsed, nil
	}
	pct := func(lats []time.Duration, p float64) time.Duration {
		ix := int(math.Ceil(p*float64(len(lats)))) - 1
		if ix < 0 {
			ix = 0
		}
		return lats[ix]
	}

	// Warm-up (discarded): page in the HTTP stack and the allocator so
	// the steady phase is not charged for process warm-up.
	if _, _, err := phase(0, cfg.duration/4); err != nil {
		return fail(err)
	}

	// Phase 1: steady state — no compaction anywhere near the stream.
	steady, steadyRate, err := phase(1, cfg.duration)
	if err != nil {
		return fail(err)
	}

	// Phase 2: the same stream with compactions firing throughout. Each
	// release appends a deduct record, so every cycle has a fresh tail to
	// seal and replay. Compactions are paced (roughly a dozen per phase)
	// rather than back-to-back: the drill measures whether a compaction
	// in flight stalls releases, not how releases fare when a busy-loop
	// of compactors competes for every core.
	pace := cfg.duration / 12
	stop := make(chan struct{})
	var (
		compactions  int
		compactTotal time.Duration
		compErr      error
		compWg       sync.WaitGroup
	)
	compWg.Add(1)
	go func() {
		defer compWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			t0 := time.Now()
			if err := srv.CompactTenant(tenant); err != nil {
				compErr = err
				return
			}
			compactTotal += time.Since(t0)
			compactions++
			select {
			case <-stop:
				return
			case <-time.After(pace):
			}
		}
	}()
	during, duringRate, err := phase(2, cfg.duration)
	close(stop)
	compWg.Wait()
	if err != nil {
		return fail(err)
	}
	if compErr != nil {
		return fail(fmt.Errorf("loadgen: snapshot-during: compaction failed: %w", compErr))
	}
	if compactions == 0 {
		return fail(fmt.Errorf("loadgen: snapshot-during: no compaction completed within the phase; raise -duration"))
	}
	return pct(steady, 0.50), pct(steady, 0.99), steadyRate,
		pct(during, 0.50), pct(during, 0.99), duringRate,
		compactions, compactTotal / time.Duration(compactions), nil
}
