package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/dpsql"
	"repro/internal/serve"
)

// runShardSweep is the shard-scaling benchmark: for each shard count in
// {1, 4, 16} it provisions a sharded tenant on an in-process server,
// hammers the table with concurrent ingesters (measuring storage-level
// rows/sec — the number the per-shard lock striping moves), then issues a
// fixed series of distinct releases over HTTP (measuring end-to-end
// release latency with the scan fanned across the worker pool). Shard
// count is a pure storage topology, so the answers and budget mechanics
// are identical across rows of the report — only the clock changes.
func runShardSweep(cfg loadgenConfig) error {
	if cfg.target != "self" {
		return fmt.Errorf("loadgen: -shards sweep needs -serve self (it measures in-process ingest)")
	}
	counts := []int{1, 4, 16}
	// At least 4 writers even on small machines: the sweep measures lock
	// striping, which needs concurrent offered load to measure at all.
	ingesters := runtime.GOMAXPROCS(0)
	if ingesters > 16 {
		ingesters = 16
	}
	if ingesters < 4 {
		ingesters = 4
	}
	rowsPerIngester := 2 * cfg.users / ingesters
	const releases = 48

	// Warm-up pass (discarded): page in the allocator and the HTTP stack
	// so the first measured row is not charged for process warm-up.
	if _, err := sweepOne(cfg, 1, ingesters, rowsPerIngester/10+1, 4); err != nil {
		return err
	}

	var rows []sweepResult
	for _, n := range counts {
		r, err := sweepOne(cfg, n, ingesters, rowsPerIngester, releases)
		if err != nil {
			return err
		}
		r.shards = n
		rows = append(rows, r)
	}

	fmt.Printf("=== shard sweep: %d ingesters x %d rows, %d releases, %d users, workers=GOMAXPROCS ===\n",
		ingesters, rowsPerIngester, releases, cfg.users)
	fmt.Printf("%-8s %14s %9s %12s %12s %12s %11s\n", "shards", "ingest rows/s", "speedup", "seq rows/s", "release p50", "release p95", "straggler")
	base := rows[0].rowsPerS
	for _, r := range rows {
		fmt.Printf("%-8d %14.0f %8.2fx %12.0f %12v %12v %10.2fx\n",
			r.shards, r.rowsPerS, r.rowsPerS/base, r.seqRowsPerS,
			r.p50.Round(time.Microsecond), r.p95.Round(time.Microsecond), r.straggler)
	}
	fmt.Println("ingest rows/s is the storage path (concurrent Insert striping across per-shard locks);")
	fmt.Println("seq rows/s is the same path driven by ONE writer (no lock contention — isolates per-shard")
	fmt.Println("overhead from cross-core contention); release latency is the HTTP estimate path with the")
	fmt.Println("scan fanned over the worker pool. straggler is the mean over releases of (slowest shard")
	fmt.Println("scan / mean shard scan) from the flight recorder's per-shard scan spans — 1.00x is a")
	fmt.Println("perfectly balanced fan-out; the excess is wall-clock spent waiting on the laggard shard.")
	fmt.Println("Per-stage release means from the server's /metrics:")
	for _, r := range rows {
		fmt.Printf("  shards=%-3d", r.shards)
		for _, d := range r.stages {
			fmt.Printf("  %s=%v", d.stage, d.mean().Round(time.Microsecond))
		}
		fmt.Println()
	}
	return nil
}

type sweepResult struct {
	shards      int
	rowsPerS    float64 // concurrent ingest throughput
	seqRowsPerS float64 // single-writer ingest throughput (contention-free)
	p50, p95    time.Duration
	stages      []stageDelta // per-stage release means from /metrics
	straggler   float64      // mean max/mean per-shard scan-span ratio
}

// sweepOne measures one shard count on a fresh in-process server.
func sweepOne(cfg loadgenConfig, shards, ingesters, rowsPerIngester, releases int) (sweepResult, error) {
	var res sweepResult
	srv := serve.New(serve.Options{Seed: cfg.seed, QueueDepth: 4 * ingesters})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	hc := &http.Client{Timeout: 30 * time.Second}

	tenant := fmt.Sprintf("sweep-%d", shards)
	if code, err := jsonPost(hc, base, "/v1/tenants", serve.CreateTenantRequest{
		ID: tenant, Epsilon: 1e9, Shards: shards,
	}, nil); err != nil || code != http.StatusCreated {
		return res, fmt.Errorf("loadgen: creating sweep tenant: code=%d err=%v", code, err)
	}
	if code, err := jsonPost(hc, base, "/v1/tenants/"+tenant+"/tables", serve.CreateTableRequest{
		Name: "metrics",
		Columns: []serve.ColumnSpec{
			{Name: "uid", Kind: "string"},
			{Name: "v", Kind: "float"},
		},
		UserColumn: "uid",
	}, nil); err != nil || code != http.StatusCreated {
		return res, fmt.Errorf("loadgen: creating sweep table: code=%d err=%v", code, err)
	}

	// Storage-level ingest: concurrent writers inserting distinct users
	// directly into the table. With one shard they serialize on a single
	// lock; with N they stripe.
	tn, ok := srv.Tenant(tenant)
	if !ok {
		return res, fmt.Errorf("loadgen: sweep tenant vanished")
	}
	tab, err := tn.DB().TableByName("metrics")
	if err != nil {
		return res, err
	}

	// Sequential baseline first: ONE writer, no lock contention possible.
	// If this column stays flat across shard counts while the concurrent
	// column degrades, the degradation is cross-core contention on shared
	// state in the insert path, not per-shard bookkeeping overhead.
	seqRows := rowsPerIngester
	tSeq := time.Now()
	for i := 0; i < seqRows; i++ {
		uid := fmt.Sprintf("s00-%06d", i/2)
		if err := tab.Insert(dpsql.Str(uid), dpsql.Float(float64(100+i%41))); err != nil {
			return res, fmt.Errorf("loadgen: sweep seq insert: %w", err)
		}
	}
	res.seqRowsPerS = float64(seqRows) / time.Since(tSeq).Seconds()

	var wg sync.WaitGroup
	t0 := time.Now()
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rowsPerIngester; i++ {
				uid := fmt.Sprintf("u%02d-%06d", g, i/2) // two rows per user
				if err := tab.Insert(dpsql.Str(uid), dpsql.Float(float64(100+i%41))); err != nil {
					fmt.Fprintf(os.Stderr, "loadgen: sweep insert: %v\n", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	total := ingesters * rowsPerIngester
	res.rowsPerS = float64(total) / elapsed.Seconds()

	// Release latency over HTTP: distinct quantile ranks defeat the
	// replay cache, so every release runs a real fanned scan + mechanism.
	// Scraping /metrics around the loop breaks the latency into the
	// server's own stages (scan vs noise vs deduct vs queue wait).
	metBefore, _, err := scrapeMetrics(hc, base)
	if err != nil {
		return res, err
	}
	lats := make([]time.Duration, 0, releases)
	for i := 0; i < releases; i++ {
		p := 0.01 + 0.98*float64(i)/float64(releases)
		r0 := time.Now()
		code, err := jsonPost(hc, base, "/v1/tenants/"+tenant+"/estimate", serve.EstimateRequest{
			Table: "metrics", Column: "v", Stat: "quantile", P: p, Epsilon: cfg.eps,
		}, nil)
		if err != nil {
			return res, err
		}
		if code != http.StatusOK {
			return res, fmt.Errorf("loadgen: sweep release %d: HTTP %d", i, code)
		}
		lats = append(lats, time.Since(r0))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pick := func(p float64) time.Duration {
		ix := int(math.Ceil(p*float64(len(lats)))) - 1
		if ix < 0 {
			ix = 0
		}
		return lats[ix]
	}
	res.p50, res.p95 = pick(0.50), pick(0.95)
	metAfter, _, err := scrapeMetrics(hc, base)
	if err != nil {
		return res, err
	}
	res.stages = stageDeltas(metBefore, metAfter, "updp_release_stage_seconds")
	if res.straggler, err = stragglerRatio(hc, base, tenant); err != nil {
		return res, err
	}
	return res, nil
}

// stragglerRatio reads the flight recorder's retained traces for the
// sweep tenant and returns the mean over releases of the per-release
// straggler ratio: the slowest shard's scan span over the mean shard
// scan span. The ring (default 256) comfortably retains the sweep's
// releases; traces without per-shard spans (cache replays, aborted
// releases) are skipped rather than counted as balanced.
func stragglerRatio(hc *http.Client, base, tenant string) (float64, error) {
	var list serve.TraceListResponse
	if err := getJSON(hc, base+"/v1/traces?tenant="+tenant, &list); err != nil {
		return 0, err
	}
	var sum float64
	n := 0
	for _, s := range list.Traces {
		var det serve.TraceDetail
		if err := getJSON(hc, base+"/v1/traces/"+s.ID, &det); err != nil {
			return 0, err
		}
		var shardMs []float64
		var walk func([]*serve.TraceSpan)
		walk = func(spans []*serve.TraceSpan) {
			for _, sp := range spans {
				if sp.Stage == "scan_shard" {
					shardMs = append(shardMs, sp.DurationMs)
				}
				walk(sp.Children)
			}
		}
		walk(det.Spans)
		if len(shardMs) == 0 {
			continue
		}
		var slowest, total float64
		for _, d := range shardMs {
			total += d
			if d > slowest {
				slowest = d
			}
		}
		if mean := total / float64(len(shardMs)); mean > 0 {
			sum += slowest / mean
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("loadgen: flight recorder retained no scan_shard spans for %s", tenant)
	}
	return sum / float64(n), nil
}

// getJSON fetches url and decodes a 200 body into out.
func getJSON(hc *http.Client, url string, out any) error {
	resp, err := hc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: GET %s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
