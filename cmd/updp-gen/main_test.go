package main

import (
	"math"
	"strings"
	"testing"
)

func TestBuildAllFamilies(t *testing.T) {
	cases := []struct {
		family string
		p1, p2 float64
	}{
		{"normal", 0, 1},
		{"gaussian", 5, 2},
		{"laplace", 0, 3},
		{"uniform", -1, 1},
		{"exponential", 2, 0},
		{"lognormal", 0, 0.5},
		{"pareto", 1, 3},
		{"studentt", 4, 0},
		{"t", 5, 0},
		{"cauchy", 0, 1},
		{"weibull", 1, 1.5},
		{"gumbel", 0, 1},
		{"triangular", 0, 4},
	}
	for _, c := range cases {
		d, err := build(c.family, c.p1, c.p2)
		if err != nil {
			t.Errorf("%s: %v", c.family, err)
			continue
		}
		if d.Name() == "" {
			t.Errorf("%s: empty name", c.family)
		}
		// Quantile sanity.
		if q1, q3 := d.Quantile(0.25), d.Quantile(0.75); !(q1 < q3) {
			t.Errorf("%s: quartiles not ordered: %v, %v", c.family, q1, q3)
		}
	}
}

func TestBuildUnknownFamily(t *testing.T) {
	if _, err := build("zipf", 1, 1); err == nil || !strings.Contains(err.Error(), "unknown family") {
		t.Errorf("want unknown-family error, got %v", err)
	}
}

func TestBuildInvalidParamsBecomeErrors(t *testing.T) {
	cases := []struct {
		family string
		p1, p2 float64
	}{
		{"normal", 0, -1},    // sigma <= 0
		{"pareto", -1, 3},    // xm <= 0
		{"weibull", 0, 1},    // lambda <= 0
		{"triangular", 4, 4}, // a == b
		{"uniform", 2, 1},    // a > b
	}
	for _, c := range cases {
		if _, err := build(c.family, c.p1, c.p2); err == nil {
			t.Errorf("%s(%v,%v): constructor panic not converted to error", c.family, c.p1, c.p2)
		}
	}
}

func TestGeneratedSamplesMatchPopulation(t *testing.T) {
	d, err := build("normal", 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Mean(); math.Abs(got-10) > 1e-12 {
		t.Errorf("mean = %v", got)
	}
}
