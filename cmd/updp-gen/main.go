// Command updp-gen writes synthetic CSV datasets drawn from the
// distribution substrate — handy for trying updp-stat and the examples on
// data with known population parameters (which it prints to stderr).
//
// Usage:
//
//	updp-gen -dist normal -p1 170 -p2 10 -n 10000 > heights.csv
//	updp-gen -dist pareto -p1 1 -p2 2.5 -n 50000 -col income -seed 7 > incomes.csv
//
// Families: normal(µ,σ), laplace(loc,scale), uniform(a,b), exponential(rate),
// lognormal(µ,σ of log), pareto(xm,α), studentt(ν), cauchy(loc,scale),
// weibull(λ,k), gumbel(µ,β), triangular(a,b).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dist"
	"repro/internal/xrand"
)

func main() {
	var (
		family = flag.String("dist", "normal", "distribution family")
		p1     = flag.Float64("p1", 0, "first parameter")
		p2     = flag.Float64("p2", 1, "second parameter (ignored by one-parameter families)")
		n      = flag.Int("n", 10000, "number of rows")
		col    = flag.String("col", "value", "CSV column name")
		seed   = flag.Uint64("seed", 1, "RNG seed")
	)
	flag.Parse()

	d, err := build(*family, *p1, *p2)
	if err != nil {
		fmt.Fprintf(os.Stderr, "updp-gen: %v\n", err)
		os.Exit(2)
	}
	if *n <= 0 {
		fmt.Fprintln(os.Stderr, "updp-gen: -n must be positive")
		os.Exit(2)
	}

	rng := xrand.New(*seed)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, *col)
	for i := 0; i < *n; i++ {
		fmt.Fprintf(w, "%g\n", d.Sample(rng))
	}

	fmt.Fprintf(os.Stderr, "updp-gen: %d rows from %s; population mean=%g var=%g IQR=%g\n",
		*n, d.Name(), d.Mean(), d.Var(), dist.IQROf(d))
}

// build constructs the requested family. Two-parameter conventions follow
// the dist package constructors; constructor panics on invalid parameters
// are converted to errors by safe.
func build(family string, p1, p2 float64) (dist.Distribution, error) {
	switch strings.ToLower(family) {
	case "normal", "gaussian":
		return safe(func() dist.Distribution { return dist.NewNormal(p1, p2) })
	case "laplace":
		return safe(func() dist.Distribution { return dist.NewLaplace(p1, p2) })
	case "uniform":
		return safe(func() dist.Distribution { return dist.NewUniform(p1, p2) })
	case "exponential":
		return safe(func() dist.Distribution { return dist.NewExponential(p1) })
	case "lognormal":
		return safe(func() dist.Distribution { return dist.NewLogNormal(p1, p2) })
	case "pareto":
		return safe(func() dist.Distribution { return dist.NewPareto(p1, p2) })
	case "studentt", "t":
		return safe(func() dist.Distribution { return dist.NewStudentT(p1) })
	case "cauchy":
		return safe(func() dist.Distribution { return dist.NewCauchy(p1, p2) })
	case "weibull":
		return safe(func() dist.Distribution { return dist.NewWeibull(p1, p2) })
	case "gumbel":
		return safe(func() dist.Distribution { return dist.NewGumbel(p1, p2) })
	case "triangular":
		return safe(func() dist.Distribution { return dist.NewTriangular(p1, p2) })
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}

// safe converts a constructor panic (invalid parameters) into an error.
func safe(f func() dist.Distribution) (d dist.Distribution, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	return f(), nil
}
