package main

import (
	"math"
	"strings"
	"testing"

	"repro/updp"
)

func TestReadColumnByName(t *testing.T) {
	csv := "id,salary,dept\n1,100.5,eng\n2,200,sales\n3,not-a-number,eng\n4,50,eng\n"
	data, err := readColumn(strings.NewReader(csv), "salary", true)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{100.5, 200, 50}
	if len(data) != len(want) {
		t.Fatalf("got %v", data)
	}
	for i := range want {
		if data[i] != want[i] {
			t.Errorf("data[%d] = %v, want %v", i, data[i], want[i])
		}
	}
}

func TestReadColumnCaseInsensitive(t *testing.T) {
	csv := "Name,VALUE\nx,1\ny,2\n"
	data, err := readColumn(strings.NewReader(csv), "value", true)
	if err != nil || len(data) != 2 {
		t.Fatalf("data=%v err=%v", data, err)
	}
}

func TestReadColumnByIndexNoHeader(t *testing.T) {
	csv := "1,10\n2,20\n3,30\n"
	data, err := readColumn(strings.NewReader(csv), "1", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 3 || data[2] != 30 {
		t.Fatalf("got %v", data)
	}
}

func TestReadColumnNumericIndexWithHeader(t *testing.T) {
	csv := "a,b\n5,6\n7,8\n"
	data, err := readColumn(strings.NewReader(csv), "0", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 2 || data[0] != 5 {
		t.Fatalf("got %v", data)
	}
}

func TestReadColumnErrors(t *testing.T) {
	if _, err := readColumn(strings.NewReader("a,b\n1,2\n"), "missing", true); err == nil {
		t.Error("missing column")
	}
	if _, err := readColumn(strings.NewReader("a\nxyz\n"), "a", true); err == nil {
		t.Error("no numeric values")
	}
	if _, err := readColumn(strings.NewReader("1,2\n"), "notanumber", false); err == nil {
		t.Error("non-numeric index without header")
	}
}

func TestReleaseStats(t *testing.T) {
	data := make([]float64, 5000)
	for i := range data {
		data[i] = float64(i % 100)
	}
	opts := []updp.Option{updp.WithSeed(1), updp.WithBeta(0.2)}
	for _, stat := range []string{"mean", "variance", "stddev", "iqr", "median",
		"p25", "p75", "p90", "p95", "p99", "q0.37"} {
		v, err := release(data, stat, 1.0, opts)
		if err != nil {
			t.Errorf("%s: %v", stat, err)
			continue
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v", stat, v)
		}
	}
	if _, err := release(data, "bogus", 1.0, opts); err == nil {
		t.Error("unknown stat should fail")
	}
	if _, err := release(data, "qxyz", 1.0, opts); err == nil {
		t.Error("bad quantile should fail")
	}
}

func TestReleaseMeanAccuracy(t *testing.T) {
	// Continuous-ish data around 42 (the estimators assume a continuous
	// distribution; truly constant data needs updp.WithDither).
	data := make([]float64, 20000)
	for i := range data {
		data[i] = 42 + float64(i%997)/997
	}
	v, err := release(data, "mean", 5.0, []updp.Option{updp.WithSeed(3)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-42.5) > 1 {
		t.Errorf("mean = %v, want ~42.5", v)
	}
}

// bigSample is a smooth, wide sample suitable for the interval mechanisms
// (which refuse when n is below the rank-slack feasibility threshold).
func bigSample() []float64 {
	data := make([]float64, 8000)
	for i := range data {
		// Roughly uniform on [-2, 2] with an irrational stride so values
		// are distinct (continuous-distribution assumption).
		data[i] = -2 + 4*math.Mod(float64(i)*0.6180339887, 1)
	}
	return data
}

func TestReleaseTrimmedMean(t *testing.T) {
	data := bigSample()
	v, err := release(data, "trimmed0.1", 1.0, []updp.Option{updp.WithSeed(5)})
	if err != nil {
		t.Fatal(err)
	}
	if v < -5 || v > 5 {
		t.Errorf("trimmed mean %v implausible for ~N(0,1) data", v)
	}
	if _, err := release(data, "trimmedx", 1.0, nil); err == nil {
		t.Error("bad trim fraction accepted")
	}
	if _, err := release(data, "trimmed0.9", 1.0, []updp.Option{updp.WithSeed(5)}); err == nil {
		t.Error("out-of-range trim fraction accepted")
	}
}

func TestReleaseIntervalStats(t *testing.T) {
	data := bigSample()
	for _, stat := range []string{"mean", "median", "iqr", "q0.75"} {
		lo, hi, err := releaseInterval(data, stat, 1.0, []updp.Option{updp.WithSeed(6)})
		if err != nil {
			t.Fatalf("%s: %v", stat, err)
		}
		if !(lo <= hi) {
			t.Errorf("%s: malformed interval [%v, %v]", stat, lo, hi)
		}
	}
	if _, _, err := releaseInterval(data, "variance", 1.0, nil); err == nil {
		t.Error("unsupported interval stat accepted")
	}
	if _, _, err := releaseInterval(data, "qx", 1.0, nil); err == nil {
		t.Error("bad interval quantile accepted")
	}
}
