// Command updp-stat releases differentially private statistics over one
// numeric column of a CSV file using the universal estimators — no range,
// scale, or distribution hints required.
//
// Usage:
//
//	updp-stat -file salaries.csv -col salary -stat mean -eps 1.0
//	cat latencies.csv | updp-stat -col 2 -stat p99 -eps 0.5 -header=false
//
// Stats: mean, variance, stddev, iqr, median, p25, p75, p90, p95, p99,
// q<float> for an arbitrary quantile (e.g. q0.37), trimmed<float> for a
// trimmed mean (e.g. trimmed0.1), and ci:mean, ci:iqr, or ci:q<float> for
// confidence-interval releases (e.g. ci:q0.9).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/updp"
)

func main() {
	var (
		file   = flag.String("file", "", "input CSV (default: stdin)")
		col    = flag.String("col", "", "column name (with -header) or 0-based index")
		stat   = flag.String("stat", "mean", "statistic to release")
		eps    = flag.Float64("eps", 1.0, "privacy budget ε")
		beta   = flag.Float64("beta", 0.1, "utility failure probability β")
		header = flag.Bool("header", true, "first row is a header")
		seed   = flag.Uint64("seed", 0, "fixed RNG seed (0 = fresh randomness; use only for testing)")
	)
	flag.Parse()

	if *col == "" {
		fatal("missing -col")
	}
	in := io.Reader(os.Stdin)
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		in = f
	}
	data, err := readColumn(in, *col, *header)
	if err != nil {
		fatal("%v", err)
	}

	opts := []updp.Option{updp.WithBeta(*beta)}
	if *seed != 0 {
		opts = append(opts, updp.WithSeed(*seed))
	}
	if ci, ok := strings.CutPrefix(strings.ToLower(*stat), "ci:"); ok {
		lo, hi, err := releaseInterval(data, ci, *eps, opts)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("%s(%s) = [%.6g, %.6g]   [ε=%g, coverage>=%g, n=%d]\n",
			*stat, *col, lo, hi, *eps, 1-*beta, len(data))
		return
	}
	value, err := release(data, *stat, *eps, opts)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("%s(%s) = %.6g   [ε=%g, β=%g, n=%d]\n", *stat, *col, value, *eps, *beta, len(data))
}

// releaseInterval answers the ci: statistics. The quantile and IQR
// intervals have universal coverage; the mean interval covers the truncated
// mean (see the library docs for the distinction).
func releaseInterval(data []float64, stat string, eps float64, opts []updp.Option) (lo, hi float64, err error) {
	switch {
	case stat == "mean":
		ci, err := updp.MeanInterval(data, eps, opts...)
		return ci.Lo, ci.Hi, err
	case stat == "iqr":
		ci, err := updp.IQRInterval(data, eps, opts...)
		return ci.Lo, ci.Hi, err
	case stat == "median":
		ci, err := updp.QuantileInterval(data, 0.5, eps, opts...)
		return ci.Lo, ci.Hi, err
	default:
		if p, ok := strings.CutPrefix(stat, "q"); ok {
			q, perr := strconv.ParseFloat(p, 64)
			if perr != nil {
				return 0, 0, fmt.Errorf("bad quantile %q", stat)
			}
			ci, err := updp.QuantileInterval(data, q, eps, opts...)
			return ci.Lo, ci.Hi, err
		}
		return 0, 0, fmt.Errorf("unknown interval stat %q (want mean, iqr, median, or q<float>)", stat)
	}
}

func release(data []float64, stat string, eps float64, opts []updp.Option) (float64, error) {
	switch strings.ToLower(stat) {
	case "mean":
		return updp.Mean(data, eps, opts...)
	case "variance", "var":
		return updp.Variance(data, eps, opts...)
	case "stddev", "std":
		return updp.StdDev(data, eps, opts...)
	case "iqr":
		return updp.IQR(data, eps, opts...)
	case "median", "p50":
		return updp.Median(data, eps, opts...)
	case "p25":
		return updp.Quantile(data, 0.25, eps, opts...)
	case "p75":
		return updp.Quantile(data, 0.75, eps, opts...)
	case "p90":
		return updp.Quantile(data, 0.90, eps, opts...)
	case "p95":
		return updp.Quantile(data, 0.95, eps, opts...)
	case "p99":
		return updp.Quantile(data, 0.99, eps, opts...)
	default:
		lower := strings.ToLower(stat)
		if p, ok := strings.CutPrefix(lower, "trimmed"); ok {
			trim, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return 0, fmt.Errorf("bad trim fraction %q", stat)
			}
			return updp.TrimmedMean(data, trim, eps, opts...)
		}
		if p, ok := strings.CutPrefix(lower, "q"); ok {
			q, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return 0, fmt.Errorf("bad quantile %q", stat)
			}
			return updp.Quantile(data, q, eps, opts...)
		}
		return 0, fmt.Errorf("unknown stat %q", stat)
	}
}

func readColumn(r io.Reader, col string, header bool) ([]float64, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	idx := -1
	if !header {
		i, err := strconv.Atoi(col)
		if err != nil {
			return nil, fmt.Errorf("without -header, -col must be a 0-based index, got %q", col)
		}
		idx = i
	}
	var data []float64
	rowNum := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		rowNum++
		if rowNum == 1 && header {
			for i, name := range rec {
				if strings.EqualFold(strings.TrimSpace(name), col) {
					idx = i
				}
			}
			if idx < 0 {
				// Allow numeric index even with a header present.
				if i, err := strconv.Atoi(col); err == nil {
					idx = i
				} else {
					return nil, fmt.Errorf("column %q not found in header %v", col, rec)
				}
			}
			continue
		}
		if idx >= len(rec) {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rec[idx]), 64)
		if err != nil {
			continue // skip non-numeric cells
		}
		data = append(data, v)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("no numeric values in column %q", col)
	}
	return data, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "updp-stat: "+format+"\n", args...)
	os.Exit(1)
}
