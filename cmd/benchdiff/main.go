// Command benchdiff compares two benchmark-smoke artifacts (`go test
// -json -bench` output, as CI's bench-smoke job records) and prints a
// markdown summary of per-benchmark ns/op deltas, flagging regressions
// past a threshold. CI runs it non-blocking against the committed
// baseline so the perf trajectory is visible on every run:
//
//	benchdiff -old BENCH_BASELINE.json -new BENCH_1.json
//	benchdiff -old old.json -new new.json -threshold 0.5
//
// It always exits 0: the diff is a surface, not a gate (single-iteration
// smoke numbers on shared CI hardware are too noisy to block on). Refresh
// the baseline with:
//
//	go test -json -bench . -benchtime=1x -run '^$' ./... > BENCH_BASELINE.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches a full Go benchmark result line, capturing the name
// (GOMAXPROCS suffix stripped so runs from different machines align) and
// the ns/op figure.
var benchLine = regexp.MustCompile(`^(Benchmark[^\s-]+)(?:-\d+)?\s+\d+\s+([0-9.eE+]+) ns/op`)

// resultOnly matches the result half alone: test2json often splits a
// benchmark's echoed name and its result line into separate output
// events, leaving the name only in the event's Test field.
var resultOnly = regexp.MustCompile(`^\s*\d+\s+([0-9.eE+]+) ns/op`)

// testEvent is the subset of test2json's event schema benchdiff reads.
type testEvent struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// stripProcs drops a -N GOMAXPROCS suffix from a benchmark name.
var stripProcs = regexp.MustCompile(`-\d+$`)

// parseBench extracts name -> ns/op from a test2json stream (or, as a
// fallback, plain `go test -bench` text output).
func parseBench(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		text := string(line)
		testName := ""
		var ev testEvent
		if err := json.Unmarshal(line, &ev); err == nil && ev.Action != "" {
			if ev.Action != "output" {
				continue
			}
			text = ev.Output
			testName = ev.Test
		}
		name, nsText := "", ""
		if m := benchLine.FindStringSubmatch(text); m != nil {
			name, nsText = m[1], m[2]
		} else if m := resultOnly.FindStringSubmatch(text); m != nil && strings.HasPrefix(testName, "Benchmark") {
			name, nsText = stripProcs.ReplaceAllString(testName, ""), m[1]
		} else {
			continue
		}
		ns, err := strconv.ParseFloat(nsText, 64)
		if err != nil {
			continue
		}
		out[name] = ns
	}
	return out, sc.Err()
}

func loadBench(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseBench(f)
}

func human(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// writeDiff renders the markdown comparison of two parsed artifacts and
// returns how many benchmarks regressed past threshold (a relative ns/op
// increase, e.g. 0.25 = +25%). Extracted from main so the threshold
// semantics are testable.
func writeDiff(w io.Writer, oldB, newB map[string]float64, threshold float64) (regressions int) {
	names := make([]string, 0, len(newB))
	for n := range newB {
		names = append(names, n)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "### Benchmark diff vs committed baseline (threshold +%.0f%%)\n\n", threshold*100)
	fmt.Fprintln(w, "| benchmark | baseline | current | delta | |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---|")
	improved, added := 0, 0
	for _, n := range names {
		cur := newB[n]
		base, ok := oldB[n]
		if !ok {
			fmt.Fprintf(w, "| %s | — | %s | new | |\n", n, human(cur))
			added++
			continue
		}
		delta := (cur - base) / base
		flag := ""
		switch {
		case delta > threshold:
			flag = "⚠ regression"
			regressions++
		case delta < -threshold:
			flag = "✓ faster"
			improved++
		}
		fmt.Fprintf(w, "| %s | %s | %s | %+.1f%% | %s |\n", n, human(base), human(cur), delta*100, flag)
	}
	removed := 0
	for n := range oldB {
		if _, ok := newB[n]; !ok {
			removed++
		}
	}
	fmt.Fprintf(w, "\n%d benchmarks; %d flagged ⚠ (> +%.0f%%), %d faster, %d new, %d removed. ",
		len(names), regressions, threshold*100, improved, added, removed)
	fmt.Fprintln(w, "Single-iteration smoke numbers are noisy; treat flags as pointers, not verdicts.")
	return regressions
}

func main() {
	var (
		oldPath   = flag.String("old", "", "baseline artifact (test2json or plain bench output)")
		newPath   = flag.String("new", "", "fresh artifact to compare")
		threshold = flag.Float64("threshold", 0.25, "relative ns/op increase flagged as a regression (0.25 = +25%)")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: need -old and -new")
		os.Exit(2)
	}
	if *threshold <= 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: -threshold must be > 0")
		os.Exit(2)
	}
	oldB, err := loadBench(*oldPath)
	if err != nil {
		// Non-blocking by design: a missing baseline is a note, not a failure.
		fmt.Printf("benchdiff: no usable baseline (%v) — nothing to compare\n", err)
		return
	}
	newB, err := loadBench(*newPath)
	if err != nil {
		fmt.Printf("benchdiff: no usable fresh artifact (%v) — nothing to compare\n", err)
		return
	}
	regressions := writeDiff(os.Stdout, oldB, newB, *threshold)
	if regressions > 0 {
		// A GitHub workflow-command annotation: the run's summary page
		// surfaces the warning without the diff itself becoming a gate
		// (the exit code stays 0 — smoke numbers are pointers, not
		// verdicts).
		fmt.Fprintf(os.Stderr, "::warning title=benchdiff::%d benchmark(s) regressed more than +%.0f%% vs the committed baseline\n",
			regressions, *threshold*100)
	}
}
