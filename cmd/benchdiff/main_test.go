package main

import (
	"strings"
	"testing"
)

func TestParseBenchTest2JSON(t *testing.T) {
	// Mix of the two shapes test2json emits: name+result merged in one
	// output event, and the split form where the name is echoed in one
	// event and the result line arrives in another (name only in Test).
	in := `{"Action":"start","Package":"repro"}
{"Action":"output","Package":"repro","Test":"BenchmarkMean","Output":"BenchmarkMean-8   \t     100\t  12345.0 ns/op\n"}
{"Action":"output","Package":"repro","Output":"some unrelated output\n"}
{"Action":"output","Package":"repro","Test":"BenchmarkIQR","Output":"BenchmarkIQR \t 1\t 9.87e+06 ns/op\n"}
{"Action":"output","Package":"repro","Test":"BenchmarkSplit","Output":"BenchmarkSplit\n"}
{"Action":"output","Package":"repro","Test":"BenchmarkSplit","Output":"       1\t   3572365 ns/op\n"}
{"Action":"output","Package":"repro","Test":"BenchmarkSplitProcs-4","Output":"       2\t   99 ns/op\n"}
{"Action":"pass","Package":"repro"}
`
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmarks: %v", len(got), got)
	}
	if got["BenchmarkMean"] != 12345 {
		t.Fatalf("BenchmarkMean = %v", got["BenchmarkMean"])
	}
	if got["BenchmarkIQR"] != 9.87e6 {
		t.Fatalf("BenchmarkIQR = %v", got["BenchmarkIQR"])
	}
	if got["BenchmarkSplit"] != 3572365 {
		t.Fatalf("BenchmarkSplit = %v", got["BenchmarkSplit"])
	}
	if got["BenchmarkSplitProcs"] != 99 {
		t.Fatalf("BenchmarkSplitProcs = %v (suffix not stripped?)", got["BenchmarkSplitProcs"])
	}
}

func TestParseBenchPlainText(t *testing.T) {
	// Fallback: raw `go test -bench` output (no JSON wrapper), and the
	// GOMAXPROCS suffix must be stripped so artifacts from machines with
	// different core counts align.
	in := "goos: linux\nBenchmarkQuantile-16   \t      50\t  2000 ns/op\t  12 B/op\nPASS\n"
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkQuantile"] != 2000 {
		t.Fatalf("got %v", got)
	}
}

func TestWriteDiffThreshold(t *testing.T) {
	oldB := map[string]float64{
		"BenchmarkStable":   1000,
		"BenchmarkSlower":   1000, // +50% in newB
		"BenchmarkBoundary": 1000, // exactly +25%: not past the threshold
		"BenchmarkFaster":   1000, // -50% in newB
		"BenchmarkRemoved":  1000,
	}
	newB := map[string]float64{
		"BenchmarkStable":   1010,
		"BenchmarkSlower":   1500,
		"BenchmarkBoundary": 1250,
		"BenchmarkFaster":   500,
		"BenchmarkAdded":    42,
	}
	var buf strings.Builder
	if got := writeDiff(&buf, oldB, newB, 0.25); got != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", got, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "| BenchmarkSlower | 1.00µs | 1.50µs | +50.0% | ⚠ regression |") {
		t.Fatalf("regression row missing:\n%s", out)
	}
	if strings.Count(out, "⚠ regression") != 1 {
		t.Fatalf("boundary delta must not be flagged:\n%s", out)
	}
	if !strings.Contains(out, "✓ faster") {
		t.Fatalf("improvement not marked:\n%s", out)
	}
	if !strings.Contains(out, "1 new, 1 removed") {
		t.Fatalf("added/removed counts missing:\n%s", out)
	}

	// A tighter threshold flags the boundary case too.
	buf.Reset()
	if got := writeDiff(&buf, oldB, newB, 0.10); got != 2 {
		t.Fatalf("threshold 0.10: regressions = %d, want 2\n%s", got, buf.String())
	}
}

func TestHuman(t *testing.T) {
	for _, tc := range []struct {
		ns   float64
		want string
	}{
		{500, "500ns"},
		{2500, "2.50µs"},
		{3.2e6, "3.20ms"},
		{1.5e9, "1.50s"},
	} {
		if got := human(tc.ns); got != tc.want {
			t.Errorf("human(%v) = %q, want %q", tc.ns, got, tc.want)
		}
	}
}
