// Command linkcheck verifies that every relative link in the
// repository's Markdown files resolves to an existing file or directory.
// It is the CI guard for the operator docs (docs/ACCOUNTING.md,
// docs/API.md, ROADMAP.md, ...): a renamed file or a typo'd anchor path
// fails the build instead of shipping a dead link.
//
//	linkcheck [root]
//
// External links (http://, https://, mailto:) and pure in-page anchors
// (#section) are skipped — this tool checks the repository's own file
// graph, not the internet. A link's #fragment is stripped before the
// path check. Exit status is 1 if any link is broken, with one line per
// miss.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline Markdown links [text](target) and
// [text](target "title"). Reference-style definitions ("[x]: target")
// are rare in this repository and external when present, so the inline
// form is the contract linkcheck enforces.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// skippable reports link targets outside the repository file graph.
func skippable(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}

// checkFile returns one message per broken relative link in the Markdown
// file at path.
func checkFile(path string) ([]string, error) {
	body, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var broken []string
	for _, m := range linkRe.FindAllStringSubmatch(string(body), -1) {
		target := m[1]
		if skippable(target) {
			continue
		}
		// Drop an in-page fragment; what must exist is the file.
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
		}
		if target == "" {
			continue
		}
		resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
		if _, err := os.Stat(resolved); err != nil {
			broken = append(broken, fmt.Sprintf("%s: broken link %q (-> %s)", path, m[1], resolved))
		}
	}
	return broken, nil
}

// run walks root for *.md files (skipping VCS and vendor trees) and
// checks each, returning every broken-link message.
func run(root string) ([]string, error) {
	var broken []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "vendor", "node_modules":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.EqualFold(filepath.Ext(path), ".md") {
			return nil
		}
		msgs, err := checkFile(path)
		if err != nil {
			return err
		}
		broken = append(broken, msgs...)
		return nil
	})
	return broken, err
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	broken, err := run(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
		os.Exit(2)
	}
	for _, msg := range broken {
		fmt.Fprintln(os.Stderr, msg)
	}
	if len(broken) > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", len(broken))
		os.Exit(1)
	}
}
