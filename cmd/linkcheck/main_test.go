package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, body string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLinkcheckResolvesRelativeLinks(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "docs", "GUIDE.md"),
		"See [the API](API.md), [the roadmap](../ROADMAP.md#open-items), "+
			"[examples](../examples), and [upstream](https://example.com) "+
			"plus [an anchor](#local) and [mail](mailto:x@y.z).")
	write(t, filepath.Join(dir, "docs", "API.md"), "See [guide](GUIDE.md).")
	write(t, filepath.Join(dir, "ROADMAP.md"), "ok")
	if err := os.MkdirAll(filepath.Join(dir, "examples"), 0o755); err != nil {
		t.Fatal(err)
	}
	broken, err := run(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 0 {
		t.Fatalf("clean tree reported broken links: %v", broken)
	}
}

func TestLinkcheckFlagsMissingTargets(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "README.md"),
		"A [dead link](docs/NOPE.md), a [live one](LIVE.md), "+
			"a [titled dead one](GONE.md \"the title\"), "+
			"and a [titled live one](LIVE.md \"still here\").")
	write(t, filepath.Join(dir, "LIVE.md"), "ok")
	broken, err := run(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 2 || !strings.Contains(broken[0], "NOPE.md") || !strings.Contains(broken[1], "GONE.md") {
		t.Fatalf("broken = %v, want exactly the NOPE.md and GONE.md misses", broken)
	}
}

func TestLinkcheckSkipsVCSTrees(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, ".git", "junk.md"), "[dead](missing.md)")
	write(t, filepath.Join(dir, "vendor", "dep", "doc.md"), "[dead](missing.md)")
	broken, err := run(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 0 {
		t.Fatalf("VCS/vendor trees were checked: %v", broken)
	}
}

// The repository's own docs must be clean — the same invariant CI
// enforces, asserted here so `go test ./...` catches a dead link before
// a PR does.
func TestRepositoryDocsHaveNoBrokenLinks(t *testing.T) {
	broken, err := run("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range broken {
		t.Error(msg)
	}
}
