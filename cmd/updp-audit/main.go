// Command updp-audit empirically audits the pure-DP claims of every
// mechanism in the library (and of deliberately broken negative controls
// that a sound auditor must flag).
//
// For each target it runs the mechanism many times on a canonical
// neighboring dataset pair, histograms the two output samples on a shared
// grid, and reports the largest observed log-probability ratio after
// subtracting binomial sampling slack — which the DP definition (paper
// equation (1) with δ=0) bounds by ε for every event. A randomized audit
// can certify violations, never compliance; "clean" means "no violation
// detectable at this trial count".
//
// Usage:
//
//	updp-audit                      # audit everything at eps=1
//	updp-audit -eps 0.5 -trials 30000
//	updp-audit -target core.EstimateMean
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/privcheck"
	"repro/internal/xrand"
)

func main() {
	var (
		eps    = flag.Float64("eps", 1.0, "epsilon claim to audit")
		trials = flag.Int("trials", 8000, "mechanism runs per dataset")
		seed   = flag.Uint64("seed", 1, "RNG seed")
		filter = flag.String("target", "", "substring filter on target names")
	)
	flag.Parse()

	targets := privcheck.Registry(*eps)
	if *filter != "" {
		kept := targets[:0]
		for _, tg := range targets {
			if strings.Contains(strings.ToLower(tg.Name), strings.ToLower(*filter)) {
				kept = append(kept, tg)
			}
		}
		targets = kept
		if len(targets) == 0 {
			fmt.Fprintf(os.Stderr, "updp-audit: no targets match %q\n", *filter)
			os.Exit(2)
		}
	}

	rng := xrand.New(*seed)
	reports, err := privcheck.RunAll(rng, targets, privcheck.Config{Trials: *trials})
	if err != nil {
		fmt.Fprintf(os.Stderr, "updp-audit: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%-42s %-8s %-12s %-10s %s\n", "target", "claim ε", "max logratio", "flagged", "verdict")
	allOK := true
	for _, r := range reports {
		verdict := "ok"
		if !r.OK {
			verdict = "UNEXPECTED"
			allOK = false
		}
		if r.Target.WantViolation {
			verdict += " (negative control)"
		}
		fmt.Printf("%-42s %-8.3g %-12.4f %-10v %s\n",
			r.Target.Name, r.Target.Claim, r.Result.MaxLogRatio, r.Result.Violation, verdict)
	}
	if !allOK {
		fmt.Fprintln(os.Stderr, "updp-audit: UNEXPECTED outcomes above")
		os.Exit(1)
	}
	fmt.Printf("\n%d targets audited at %d trials each: all outcomes as expected.\n", len(reports), *trials)
}
