// Package repro is a from-scratch Go reproduction of "Universal Private
// Estimators" (Wei Dong and Ke Yi, PODS 2023): pure ε-DP estimators for
// the mean, variance, and interquartile range of an arbitrary unknown
// continuous distribution, with no boundedness or family assumptions.
//
// Import repro/updp for the public API. See DESIGN.md for the system
// inventory, EXPERIMENTS.md for the reproduction results, and
// bench_test.go (this package) for one benchmark per reproduced
// table/figure.
//
// # Serving layer
//
// Beyond the library, the repository ships a concurrent multi-tenant DP
// query service (internal/serve, run with cmd/updp-serve): an HTTP+JSON
// API that hosts many tenants, each with an isolated dpsql database and
// one privacy ledger shared by every release path. Estimator calls
// (mean, variance, stddev, iqr, median, quantile, count, and the paper's
// Section-3 empirical variants) and full dpsql SQL queries execute
// concurrently on a bounded worker pool while ingestion streams in; the
// ledgers and the dpsql engine are safe for concurrent use, with atomic
// check-and-deduct budget enforcement so racing releases can never
// jointly overdraw a tenant's budget. cmd/updp-bench doubles as the
// service-level load generator (-serve) reporting throughput and latency
// percentiles, and (-compare) as the composition-backend exhaustion duel.
// See examples/serve for a full client walkthrough.
//
// # Privacy accounting backends
//
// Accounting is pluggable (dp.Ledger): every release path — the
// updp.Estimator (WithLedger), the dpsql engine (DB.SetLedger), and the
// serve tenants ("accounting" in the create-tenant request) — charges a
// composition backend instead of a hard-wired pure-ε accountant.
// dp.BasicLedger preserves the paper's basic composition (Lemma 2.2);
// dp.ZCDPLedger accounts in zCDP ρ (Bun & Steinke 2016), pricing each
// pure ε-release at ε²/2 — so sustained many-small-release traffic lasts
// quadratically longer under the same nominal (ε, δ) — and charging the
// natively-Gaussian count release its ρ directly; dp.RDPLedger
// generalizes both with Rényi accounting (Mironov 2017) over a
// configurable grid of orders α: every release is priced as its full RDP
// curve (pure releases via the tight pure-DP→RDP bound, strictly below
// zCDP's αε²/2 line; Gaussian releases via ρα; curve-native costs via
// dp.CurveCost), the per-order vectors compose by addition, and the
// budget is enforced on the optimal (ε, δ) conversion — on a grid that
// brackets the optimal order (dp.RDPOrdersFor) never looser than zCDP,
// and strictly tighter on mixed Laplace+Gaussian workloads.
// dp.WindowedLedger wraps any backend with a wall-clock refill window,
// turning a lifetime budget into a renewable rate. The serve layer also
// replays byte-identical repeated releases from a per-tenant response
// cache (LRU-evicted, free post-processing) and supports record-level
// privacy units for tables where a row is a user. docs/ACCOUNTING.md is
// the operator's guide to choosing a backend and pricing; docs/API.md is
// the complete HTTP wire reference; updp-bench -serve -compare is the
// three-way exhaustion duel demonstrating rdp >= zcdp >= pure sustained
// releases from the same nominal budget.
//
// # Durable tenant state
//
// A DP budget is a lifetime total, so a process restart must not refill
// it. internal/store is the per-tenant durability engine: an append-only
// write-ahead log (tenant creation, table DDL, row batches, and — synced
// before any answer is released — every ledger deduction) plus periodic
// compacted snapshots of full tenant state, with replay-on-boot recovery.
// The log is segmented: compaction first seals the active tail into an
// immutable, fully-fsynced wal.NNNNNNNNN.seg file (microseconds under
// the log lock), then replays the sealed segments into a fresh snapshot
// entirely off the hot path — no persist lock, no shard locks — so
// releases and ingest on the tenant proceed at full speed while it runs;
// a crash at any point between seal and the post-publish segment sweep
// recovers exactly (covered segments are skipped, then cleaned by the
// next compaction). Run the service with updp-serve -data-dir to enable
// it; recovery is conservative — a torn tail in the ACTIVE log can drop
// trailing data rows but never a recorded deduction (sealed segments,
// being fully fsynced, refuse any damage loudly), so post-restart spend
// is always >= pre-crash acknowledged spend. Concurrent releases share their durability cost
// through WAL group commit: parked deductions and their audit records
// are drained into one batch WAL record and acked by a single shared
// fsync (adaptive — a lone release commits immediately, batches form
// from arrivals during the previous barrier), so durable throughput
// tracks ephemeral throughput at pool-width concurrency while every
// invariant stands: the deduction is on disk before its answer is
// released, a torn batch drops atomically (never a prefix), and
// "acknowledged implies audited" costs zero extra fsyncs because the
// audit copy rides the same batch record. updp-serve -commit-delay and
// -commit-batch tune the window; -no-group-commit restores one fsync per
// record. The building blocks are reusable: every dp ledger implements
// Snapshot/Restore/ForceSpend (dp.StatefulLedger) and dpsql tables
// export/import their full state. updp-bench -serve -restart is the
// recovery drill: ingest + spend, snapshot, crash without flushing,
// re-open, and report the carried-over spend and recovery wall-time;
// updp-bench -serve -duel measures the remaining durability tax as an
// ephemeral/durable throughput ratio under a distinct-release load; and
// updp-bench -serve -snapshot-during measures release p99 with
// compactions firing continuously against the compaction-free steady
// state — the direct check that compaction no longer stalls releases.
//
// # Columnar sharded storage
//
// A tenant's tables are hash-partitioned by user id into N shards
// ("shards" at tenant creation, updp-serve -shards for the default):
// ingestion stripes across per-shard locks instead of serializing on one
// table-wide mutex, and release scans fan out over the shards on the
// serve layer's worker pool, merging partial per-user aggregates before
// the mechanism runs. Inside each shard, storage is columnar: values
// live in typed column slices (float64/int64/string) with a per-shard
// user dictionary mapping each row to a dense user index, so the hot
// release loops — per-user collapse, WHERE predicates, GROUP BY
// selection — are tight passes over contiguous typed arrays with zero
// per-row map lookups or interface dispatch. Large shards additionally
// split their collapse into row-range chunks that run work-stealing on
// the same worker pool (a counting-sort scatter keeps the float fold's
// bits identical to a sequential pass). The merge is the decomposition
// view of the paper's per-user collapse — partial (sum, count)
// accumulators combine by addition into exactly the collapse a
// monolithic scan produces — so a release still makes exactly one ledger
// deduction and the noise semantics are unchanged: for a fixed seed, a
// sharded columnar tenant and an unsharded twin release bit-for-bit
// identical answers. The wire and snapshot formats stay row-oriented
// (rows materialize fresh from the columns on export), WAL row records
// carry a shard tag and snapshots carry per-row placement, so recovery
// rebuilds the same partitioning; pre-shard and pre-columnar data
// directories boot unchanged with spend preserved. updp-bench -serve
// -shards sweep reports ingest rows/sec and release latency at N=1,4,16.
//
// # Observability
//
// The service is instrumented end to end on internal/obs, a
// zero-dependency metrics and tracing kit: GET /metrics renders the
// full registry in the Prometheus text format (per-stage release
// latency histograms, per-tenant budget gauges with a burn-rate
// odometer and projected time-to-exhaustion, cache/pool/WAL counters);
// every release carries an ID (the X-Release-Id header) through a span
// trace that feeds a structured slow-release log; and every charged
// release appends one CRC-framed line to a per-tenant DP audit log —
// durable (via the shared group-commit barrier) before the answer is
// acknowledged on durable tenants, paged out via GET
// /v1/tenants/{id}/audit, and summing back to exactly the ledger's
// recorded spend. docs/OBSERVABILITY.md is the operator's
// catalog (metrics, trace stages, audit schema, scrape and pprof
// setup); updp-serve -metrics-addr and -debug-addr mount the scrape
// and net/http/pprof on dedicated listeners; updp-bench -serve prints
// a per-stage latency breakdown differenced from the server's own
// histograms.
package repro
