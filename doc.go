// Package repro is a from-scratch Go reproduction of "Universal Private
// Estimators" (Wei Dong and Ke Yi, PODS 2023): pure ε-DP estimators for
// the mean, variance, and interquartile range of an arbitrary unknown
// continuous distribution, with no boundedness or family assumptions.
//
// Import repro/updp for the public API. See DESIGN.md for the system
// inventory, EXPERIMENTS.md for the reproduction results, and
// bench_test.go (this package) for one benchmark per reproduced
// table/figure.
//
// # Serving layer
//
// Beyond the library, the repository ships a concurrent multi-tenant DP
// query service (internal/serve, run with cmd/updp-serve): an HTTP+JSON
// API that hosts many tenants, each with an isolated dpsql database and
// one ε-budget accountant shared by every release path. Estimator calls
// (mean, variance, stddev, iqr, median, quantile, and the paper's
// Section-3 empirical variants) and full dpsql SQL queries execute
// concurrently on a bounded worker pool while ingestion streams in;
// dp.Accountant and the dpsql engine are safe for concurrent use, with
// atomic check-and-deduct budget enforcement so racing releases can never
// jointly overdraw a tenant's ε. cmd/updp-bench doubles as the
// service-level load generator (-serve) reporting throughput and latency
// percentiles. See examples/serve for a full client walkthrough.
package repro
