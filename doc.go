// Package repro is a from-scratch Go reproduction of "Universal Private
// Estimators" (Wei Dong and Ke Yi, PODS 2023): pure ε-DP estimators for
// the mean, variance, and interquartile range of an arbitrary unknown
// continuous distribution, with no boundedness or family assumptions.
//
// Import repro/updp for the public API. See DESIGN.md for the system
// inventory, EXPERIMENTS.md for the reproduction results, and
// bench_test.go (this package) for one benchmark per reproduced
// table/figure.
package repro
