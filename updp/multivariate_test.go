package updp

import (
	"errors"
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestMeanVector(t *testing.T) {
	rng := xrand.New(1)
	const n = 20000
	data := make([][]float64, n)
	for i := range data {
		data[i] = []float64{3 + rng.Gaussian(), -50 + 2*rng.Gaussian()}
	}
	got, err := MeanVector(data, 2.0, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("dims = %d", len(got))
	}
	if math.Abs(got[0]-3) > 0.3 || math.Abs(got[1]+50) > 0.6 {
		t.Errorf("MeanVector = %v", got)
	}
}

func TestMeanVectorOptionsValidated(t *testing.T) {
	if _, err := MeanVector([][]float64{{1}, {2}, {3}, {4}}, 1.0, WithBeta(2)); !errors.Is(err, ErrInvalidBeta) {
		t.Error("bad beta")
	}
	if _, err := MeanVector(nil, 1.0); !errors.Is(err, ErrTooFewSamples) {
		t.Error("empty data")
	}
}

func TestVarianceDiagonal(t *testing.T) {
	rng := xrand.New(2)
	const n = 30000
	data := make([][]float64, n)
	for i := range data {
		data[i] = []float64{rng.Gaussian(), 4 * rng.Gaussian()}
	}
	got, err := VarianceDiagonal(data, 2.0, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-1) > 0.5 || math.Abs(got[1]-16) > 6 {
		t.Errorf("VarianceDiagonal = %v", got)
	}
}

func TestIQRBracket(t *testing.T) {
	rng := xrand.New(3)
	data := make([]float64, 10000)
	for i := range data {
		data[i] = rng.Gaussian()
	}
	const trueIQR = 1.3489795
	hits := 0
	for seed := uint64(0); seed < 20; seed++ {
		br, err := IQRBracket(data, 1.0, WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		if br.Lo > br.Hi {
			t.Fatalf("malformed bracket %+v", br)
		}
		if br.Lo <= trueIQR && trueIQR <= br.Hi {
			hits++
		}
	}
	if hits < 15 {
		t.Errorf("bracket contained the IQR only %d/20 times", hits)
	}
}
