package updp

import (
	"errors"
	"math"
	"testing"

	"repro/internal/xrand"
)

func gaussianSample(seed uint64, n int, mu, sigma float64) []float64 {
	rng := xrand.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = mu + sigma*rng.Gaussian()
	}
	return out
}

func TestQuantilesPublicAPI(t *testing.T) {
	data := gaussianSample(101, 10000, 50, 5)
	ps := []float64{0.25, 0.5, 0.75}
	qs, err := Quantiles(data, ps, 1.0, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 3 {
		t.Fatalf("want 3 quantiles, got %d", len(qs))
	}
	if !(qs[0] <= qs[1] && qs[1] <= qs[2]) {
		t.Errorf("quantiles not monotone: %v", qs)
	}
	if math.Abs(qs[1]-50) > 3 {
		t.Errorf("median %v far from 50", qs[1])
	}
}

func TestQuantilesValidation(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5}
	if _, err := Quantiles(data, []float64{0.5, 1.5}, 1.0); !errors.Is(err, ErrInvalidQuantile) {
		t.Errorf("want ErrInvalidQuantile, got %v", err)
	}
	if _, err := Quantiles(data, []float64{0.5}, -1); !errors.Is(err, ErrInvalidEpsilon) {
		t.Errorf("want ErrInvalidEpsilon, got %v", err)
	}
	if _, err := Quantiles(data, []float64{0.5}, 1, WithBeta(2)); !errors.Is(err, ErrInvalidBeta) {
		t.Errorf("want ErrInvalidBeta, got %v", err)
	}
}

func TestTrimmedMeanPublicAPI(t *testing.T) {
	data := gaussianSample(102, 8000, -7, 2)
	// Contaminate 2%.
	for i := 0; i < len(data)/50; i++ {
		data[i] = 1e12
	}
	m, err := TrimmedMean(data, 0.1, 1.0, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-(-7)) > 2 {
		t.Errorf("trimmed mean %v far from -7 despite trimming", m)
	}
}

func TestTrimmedMeanValidation(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5}
	for _, trim := range []float64{-0.1, 0.5, 0.9, math.NaN()} {
		if _, err := TrimmedMean(data, trim, 1.0); !errors.Is(err, ErrInvalidTrim) {
			t.Errorf("trim=%v: want ErrInvalidTrim, got %v", trim, err)
		}
	}
}

func TestMeanIntervalPublicAPI(t *testing.T) {
	data := gaussianSample(103, 6000, 3, 1)
	ci, err := MeanInterval(data, 1.0, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if !(ci.Lo <= ci.Estimate && ci.Estimate <= ci.Hi) {
		t.Errorf("estimate outside interval: %+v", ci)
	}
	if ci.Hi-ci.Lo <= 0 {
		t.Errorf("degenerate interval: %+v", ci)
	}
}

func TestQuantileIntervalPublicAPI(t *testing.T) {
	data := gaussianSample(104, 6000, 0, 1)
	ci, err := QuantileInterval(data, 0.5, 1.0, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if !(ci.Lo <= ci.Hi) {
		t.Errorf("malformed interval: %+v", ci)
	}
	// The true median 0 should be inside for a well-behaved Gaussian run.
	if 0 < ci.Lo || 0 > ci.Hi {
		t.Errorf("median CI [%v, %v] misses 0", ci.Lo, ci.Hi)
	}
	if _, err := QuantileInterval(data, 0, 1.0); !errors.Is(err, ErrInvalidQuantile) {
		t.Errorf("want ErrInvalidQuantile, got %v", err)
	}
}

func TestIQRIntervalPublicAPI(t *testing.T) {
	data := gaussianSample(105, 6000, 0, 2)
	ci, err := IQRInterval(data, 1.0, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	trueIQR := 2 * 1.3489795 // 2*sigma*(z(0.75)-z(0.25))
	if ci.Lo < 0 || ci.Lo > ci.Hi {
		t.Errorf("malformed IQR interval: %+v", ci)
	}
	if trueIQR < ci.Lo || trueIQR > ci.Hi {
		t.Errorf("IQR CI [%v, %v] misses true IQR %v", ci.Lo, ci.Hi, trueIQR)
	}
}

func TestQuantilesWithDither(t *testing.T) {
	// Heavily quantized data (integer grid) works once dithered.
	rng := xrand.New(106)
	data := make([]float64, 5000)
	for i := range data {
		data[i] = float64(rng.Intn(10)) // atoms at 0..9
	}
	qs, err := Quantiles(data, []float64{0.25, 0.75}, 1.0, WithSeed(6), WithDither(1))
	if err != nil {
		t.Fatal(err)
	}
	if qs[0] < -2 || qs[1] > 12 || qs[0] > qs[1] {
		t.Errorf("dithered quantiles implausible: %v", qs)
	}
}

func TestEstimatorNewReleases(t *testing.T) {
	data := gaussianSample(107, 10000, 0, 1)
	est, err := NewEstimator(data, 5.0, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	qs, err := est.Quantiles([]float64{0.25, 0.75}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if qs[0] > qs[1] {
		t.Errorf("quantiles not monotone: %v", qs)
	}
	if _, err := est.TrimmedMean(0.1, 1.0); err != nil {
		t.Fatal(err)
	}
	if _, err := est.MeanInterval(1.0); err != nil {
		t.Fatal(err)
	}
	if _, err := est.QuantileInterval(0.5, 1.0); err != nil {
		t.Fatal(err)
	}
	if got := est.Remaining(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("remaining budget %v, want 1.0", got)
	}
	if _, err := est.IQRInterval(1.0); err != nil {
		t.Fatal(err)
	}
	// Budget is now exhausted: every new-release method must refuse.
	if _, err := est.Quantiles([]float64{0.5}, 0.5); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("Quantiles after exhaustion: %v", err)
	}
	if _, err := est.TrimmedMean(0.1, 0.5); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("TrimmedMean after exhaustion: %v", err)
	}
	if _, err := est.MeanInterval(0.5); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("MeanInterval after exhaustion: %v", err)
	}
	if _, err := est.QuantileInterval(0.5, 0.5); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("QuantileInterval after exhaustion: %v", err)
	}
	if _, err := est.IQRInterval(0.5); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("IQRInterval after exhaustion: %v", err)
	}
}
