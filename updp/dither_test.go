package updp

import (
	"errors"
	"math"
	"testing"

	"repro/internal/xrand"
)

// atomicData simulates quantized inputs: integer counts with big atoms —
// the regime where Algorithm 7's bucket search collapses without dither.
func atomicData(seed uint64, n int) []float64 {
	rng := xrand.New(seed)
	out := make([]float64, n)
	for i := range out {
		// ~70% ones, rest 2..4: mean ~1.45.
		v := 1.0
		if rng.Float64() > 0.7 {
			v = float64(2 + rng.Intn(3))
		}
		out[i] = v
	}
	return out
}

func trueMean(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

func TestDitherRescuesAtomicData(t *testing.T) {
	data := atomicData(1, 30000)
	want := trueMean(data)

	// Without dither the bucket collapses and the estimate is garbage.
	raw, err := Mean(data, 1.0, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	// With dither at the quantization step the estimate is accurate
	// (dither is mean-preserving).
	dithered, err := Mean(data, 1.0, WithSeed(2), WithDither(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dithered-want) > 0.1 {
		t.Errorf("dithered mean = %v, want ~%v", dithered, want)
	}
	if math.Abs(raw-want) < math.Abs(dithered-want) {
		t.Logf("note: raw estimate happened to be fine too (raw=%v dithered=%v)", raw, dithered)
	}
}

func TestDitherVarianceCorrection(t *testing.T) {
	// Var grows by width^2/12 under dither; at width=1 that is 1/12.
	data := atomicData(3, 50000)
	var m, m2 float64
	for _, v := range data {
		m += v
	}
	m /= float64(len(data))
	for _, v := range data {
		m2 += (v - m) * (v - m)
	}
	trueVar := m2 / float64(len(data))

	v, err := Variance(data, 1.0, WithSeed(4), WithDither(1.0))
	if err != nil {
		t.Fatal(err)
	}
	want := trueVar + 1.0/12
	if math.Abs(v-want) > 0.15 {
		t.Errorf("dithered variance = %v, want ~%v", v, want)
	}
}

func TestDitherPreservesDeterminism(t *testing.T) {
	data := atomicData(5, 5000)
	a, err := Mean(data, 1.0, WithSeed(6), WithDither(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mean(data, 1.0, WithSeed(6), WithDither(1))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("dither must draw from the seeded stream")
	}
}

func TestDitherValidation(t *testing.T) {
	data := atomicData(7, 100)
	for _, w := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := Mean(data, 1.0, WithDither(w)); !errors.Is(err, ErrInvalidDither) {
			t.Errorf("dither %v should fail", w)
		}
	}
	// Zero dither is a no-op, not an error.
	if _, err := Mean(data, 1.0, WithSeed(8), WithDither(0)); err != nil {
		t.Errorf("zero dither: %v", err)
	}
}

func TestDitherDoesNotMutateCallerData(t *testing.T) {
	data := atomicData(9, 1000)
	snapshot := append([]float64(nil), data...)
	if _, err := Mean(data, 1.0, WithSeed(10), WithDither(1)); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if data[i] != snapshot[i] {
			t.Fatal("caller data mutated by dithering")
		}
	}
}
