package updp

import (
	"repro/internal/core"
)

// MeanVector releases an ε-DP estimate of the mean of d-dimensional data,
// the paper's §1.2 multivariate extension: the universal univariate
// estimator per coordinate under an even budget split, pure ε-DP
// throughout. Coordinates may follow entirely different distribution
// families and scales; no per-coordinate ranges are needed.
func MeanVector(data [][]float64, eps float64, opts ...Option) ([]float64, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	return core.EstimateMeanVector(c.rng, data, eps, c.beta)
}

// VarianceDiagonal releases ε-DP estimates of the per-coordinate variances
// (the diagonal of the covariance matrix) under an even budget split.
func VarianceDiagonal(data [][]float64, eps float64, opts ...Option) ([]float64, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	return core.EstimateVarianceDiagonal(c.rng, data, eps, c.beta)
}

// ScaleBracket is an ε-DP bracket [Lo, Hi] containing the distribution's
// IQR with high probability — a privatized scale bound in the direction of
// the paper's §1.3 open problem (privatized parameter upper bounds).
type ScaleBracket = core.ScaleBracket

// IQRBracket releases a scale bracket: Lo ≥ ¼·φ(1/16) (Theorem 4.3) and
// Hi ≥ IQR w.h.p. Useful as a sanity check before trusting a point
// estimate, or to pick follow-up clipping bounds without extra data peeks.
func IQRBracket(data []float64, eps float64, opts ...Option) (ScaleBracket, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return ScaleBracket{}, err
	}
	return core.EstimateScaleBracket(c.rng, data, eps, c.beta)
}
