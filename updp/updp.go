// Package updp is the public API of the universal private estimators
// library — a from-scratch Go implementation of "Universal Private
// Estimators" (Dong & Yi, PODS 2023).
//
// It releases the statistical mean, variance, standard deviation,
// interquartile range, and arbitrary quantiles of a real-valued sample
// under pure ε-differential privacy, for an arbitrary unknown continuous
// distribution: no range for the mean (A1), no bounds on the variance
// (A2), and no distribution-family assumption (A3) are required — the
// first estimators to achieve this under pure DP.
//
// Quick start:
//
//	m, err := updp.Mean(data, 1.0)                  // ε = 1
//	v, err := updp.Variance(data, 1.0)
//	q, err := updp.Quantile(data, 0.99, 1.0)        // universal p99
//	s, err := updp.IQR(data, 1.0, updp.WithSeed(7)) // reproducible
//
// Every call is a self-contained ε-DP release; answering several
// statistics about the same data composes additively (Lemma 2.2 of the
// paper) — budget accordingly, or use Estimator to have the library
// enforce a total budget for you.
//
// Beyond the paper's three headline parameters the library releases
// multi-quantile profiles through one shared privatized range (Quantiles),
// robust trimmed means (TrimmedMean), and confidence intervals
// (QuantileInterval, IQRInterval with universal coverage; MeanInterval for
// the truncated mean — see the interval docs for what pure DP does and
// does not permit). Multivariate extensions live in MeanVector and
// VarianceDiagonal.
//
// The empirical-setting primitives of the paper's Section 3 (instance-
// optimal mean and quantiles over unbounded integer data, of independent
// interest per the paper's abstract) are exposed as EmpiricalMean,
// EmpiricalQuantile, PrivateRange, and PrivateRadius.
package updp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/empirical"
	"repro/internal/xrand"
)

// Errors surfaced by the public API (use errors.Is).
var (
	// ErrInvalidEpsilon reports a non-positive or non-finite ε.
	ErrInvalidEpsilon = dp.ErrInvalidEpsilon
	// ErrInvalidBeta reports a failure probability outside (0, 1).
	ErrInvalidBeta = dp.ErrInvalidBeta
	// ErrTooFewSamples reports fewer than 4 samples.
	ErrTooFewSamples = core.ErrTooFewSamples
	// ErrBudgetExhausted reports an Estimator whose budget is spent.
	ErrBudgetExhausted = dp.ErrBudgetExhausted
	// ErrInvalidQuantile reports a quantile probability outside (0, 1).
	ErrInvalidQuantile = errors.New("updp: quantile probability must be in (0, 1)")
	// ErrInvalidDither reports a negative or non-finite dither width.
	ErrInvalidDither = errors.New("updp: dither width must be finite and non-negative")
)

// config carries per-call options.
type config struct {
	beta   float64
	rng    *xrand.RNG
	dither float64
	ledger dp.Ledger
}

// Option customizes a release.
type Option func(*config)

// WithBeta sets the failure probability β of the utility guarantee
// (default 0.1). It does not affect privacy — only the high-probability
// error bound the theorems attach to the release.
func WithBeta(beta float64) Option {
	return func(c *config) { c.beta = beta }
}

// WithSeed makes the release deterministic for testing and experiment
// reproducibility. Do not use a fixed seed for production releases: the
// privacy guarantee needs fresh randomness per release.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.rng = xrand.New(seed) }
}

// WithLedger makes an Estimator charge its releases to the given
// composition backend instead of the default pure-ε accountant built from
// totalEps (which is then ignored). A dp.ZCDPLedger makes many small
// releases quadratically cheaper; a dp.WindowedLedger renews the budget on
// a wall-clock cadence; a shared ledger lets several Estimators (or other
// release paths) draw from one budget. Remaining and budget-exhausted
// errors then report in the backend's native unit. The option only affects
// NewEstimator; package-level one-shot releases ignore it.
func WithLedger(led dp.Ledger) Option {
	return func(c *config) { c.ledger = led }
}

// WithDither adds independent uniform noise U(-width/2, width/2) to every
// record before estimation. The paper's guarantees assume a *continuous*
// distribution; data with large atoms (integer counts, rounded currency,
// quantized sensors) can make the Algorithm 7 bucket search collapse.
// Dithering restores continuity at a bounded cost: the mean is unchanged
// (the noise is symmetric), the variance grows by width²/12, and quantiles
// and the IQR move by at most width. Pick width at the quantization step.
// Dithering is a per-record randomized map applied before the mechanism,
// so it cannot weaken the privacy guarantee.
func WithDither(width float64) Option {
	return func(c *config) { c.dither = width }
}

func buildConfig(opts []Option) (config, error) {
	c := config{beta: 0.1}
	for _, o := range opts {
		o(&c)
	}
	if err := dp.CheckBeta(c.beta); err != nil {
		return c, err
	}
	if c.dither < 0 || math.IsNaN(c.dither) || math.IsInf(c.dither, 0) {
		return c, fmt.Errorf("%w: dither width %v", ErrInvalidDither, c.dither)
	}
	if c.rng == nil {
		c.rng = xrand.NewRandomSeed()
	}
	return c, nil
}

// prepare applies per-record preprocessing (currently dithering) and
// returns the data slice the mechanism should consume.
func (c config) prepare(data []float64) []float64 {
	if c.dither == 0 {
		return data
	}
	out := make([]float64, len(data))
	for i, x := range data {
		out[i] = x + (c.rng.Float64()-0.5)*c.dither
	}
	return out
}

// Mean releases an ε-DP estimate of the distribution mean (Algorithm 8 /
// Theorem 4.5). Works for any continuous distribution with a finite mean;
// needs no range or scale hints.
func Mean(data []float64, eps float64, opts ...Option) (float64, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return 0, err
	}
	return core.EstimateMean(c.rng, c.prepare(data), eps, c.beta)
}

// Variance releases an ε-DP estimate of the distribution variance
// (Algorithm 9 / Theorem 5.2). Works for any continuous distribution with
// a finite fourth moment.
func Variance(data []float64, eps float64, opts ...Option) (float64, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return 0, err
	}
	return core.EstimateVariance(c.rng, c.prepare(data), eps, c.beta)
}

// StdDev releases an ε-DP estimate of the standard deviation: the square
// root of Variance, projected onto [0, ∞) (post-processing preserves DP).
func StdDev(data []float64, eps float64, opts ...Option) (float64, error) {
	v, err := Variance(data, eps, opts...)
	if err != nil {
		return 0, err
	}
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v), nil
}

// IQR releases an ε-DP estimate of the interquartile range (Algorithm 10 /
// Theorem 6.2) — a universal scale estimate that exists even when the mean
// or variance do not (e.g. Cauchy data).
func IQR(data []float64, eps float64, opts ...Option) (float64, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return 0, err
	}
	return core.EstimateIQR(c.rng, c.prepare(data), eps, c.beta)
}

// Quantile releases an ε-DP estimate of the p-quantile, p in (0, 1).
func Quantile(data []float64, p float64, eps float64, opts ...Option) (float64, error) {
	if !(p > 0 && p < 1) {
		return 0, fmt.Errorf("%w: got %v", ErrInvalidQuantile, p)
	}
	c, err := buildConfig(opts)
	if err != nil {
		return 0, err
	}
	// Clamp the target rank to [1, n] (as EstimateQuantilesProb does):
	// float rounding at extreme p must not push tau off the data.
	tau := int(math.Ceil(p * float64(len(data))))
	if tau < 1 {
		tau = 1
	}
	if n := len(data); tau > n && n > 0 {
		tau = n
	}
	return core.EstimateQuantile(c.rng, c.prepare(data), tau, eps, c.beta)
}

// Median releases an ε-DP estimate of the median (the 1/2-quantile).
func Median(data []float64, eps float64, opts ...Option) (float64, error) {
	return Quantile(data, 0.5, eps, opts...)
}

// ---------- empirical-setting API (paper Section 3) ----------

// EmpiricalMean releases an ε-DP estimate of the *empirical* mean µ(D) of
// integer data over the unbounded domain Z (Algorithm 5 / Theorem 3.3).
// The error is O(γ(D)/(εn) · log log γ(D)) — inward-neighborhood optimal.
func EmpiricalMean(data []int64, eps float64, opts ...Option) (float64, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return 0, err
	}
	return empirical.Mean(c.rng, data, eps, c.beta)
}

// EmpiricalQuantile releases an ε-DP estimate of the tau-th order statistic
// (1-based) of integer data over Z (Algorithm 6 / Theorem 3.5), with rank
// error O(log γ(D)/ε).
func EmpiricalQuantile(data []int64, tau int, eps float64, opts ...Option) (int64, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return 0, err
	}
	return empirical.Quantile(c.rng, data, tau, eps, c.beta)
}

// PrivateRange releases an ε-DP interval containing all but
// O(log log γ(D)/ε) of the data, of width at most 4·γ(D) (Algorithm 4 /
// Theorem 3.2).
func PrivateRange(data []int64, eps float64, opts ...Option) (lo, hi int64, err error) {
	c, err := buildConfig(opts)
	if err != nil {
		return 0, 0, err
	}
	return empirical.Range(c.rng, data, eps, c.beta)
}

// PrivateRadius releases an ε-DP estimate r̃ad ≤ 2·rad(D) covering all but
// O(log log rad(D)/ε) of the data (Algorithm 3 / Theorem 3.1).
func PrivateRadius(data []int64, eps float64, opts ...Option) (int64, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return 0, err
	}
	return empirical.Radius(c.rng, data, eps, c.beta)
}
