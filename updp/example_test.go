package updp_test

import (
	"errors"
	"fmt"
	"math"

	"repro/updp"
)

// synthetic returns a deterministic, continuous-looking sample centred at
// loc with the given spread — enough structure for the estimators, stable
// output for the examples.
func synthetic(n int, loc, spread float64) []float64 {
	data := make([]float64, n)
	for i := range data {
		u := math.Mod(float64(i)*0.6180339887, 1) // low-discrepancy in [0,1)
		v := math.Mod(float64(i)*0.7548776662, 1)
		// Box-Muller-ish shaping for a roughly bell-shaped sample.
		z := math.Sqrt(-2*math.Log(u+1e-12)) * math.Cos(2*math.Pi*v)
		data[i] = loc + spread*z
	}
	return data
}

func ExampleMean() {
	data := synthetic(20000, 170, 10) // e.g. heights in cm, no range hints
	m, err := updp.Mean(data, 1.0, updp.WithSeed(1))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("within 2cm of 170:", math.Abs(m-170) < 2)
	// Output: within 2cm of 170: true
}

func ExampleQuantiles() {
	data := synthetic(20000, 100, 15)
	qs, err := updp.Quantiles(data, []float64{0.25, 0.5, 0.75}, 1.0, updp.WithSeed(2))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("monotone:", qs[0] <= qs[1] && qs[1] <= qs[2])
	fmt.Println("median near 100:", math.Abs(qs[1]-100) < 5)
	// Output:
	// monotone: true
	// median near 100: true
}

func ExampleTrimmedMean() {
	data := synthetic(10000, 50, 5)
	for i := 0; i < 100; i++ {
		data[i] = 1e9 // 1% gross corruption
	}
	tm, err := updp.TrimmedMean(data, 0.1, 1.0, updp.WithSeed(3))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("robust to outliers:", math.Abs(tm-50) < 5)
	// Output: robust to outliers: true
}

func ExampleQuantileInterval() {
	data := synthetic(20000, 0, 1)
	ci, err := updp.QuantileInterval(data, 0.9, 1.0, updp.WithSeed(4))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// The population p90 of the shaping distribution is ~1.28.
	fmt.Println("covers 1.28:", ci.Lo <= 1.28 && 1.28 <= ci.Hi)
	// Output: covers 1.28: true
}

func ExampleNewEstimator() {
	data := synthetic(10000, 0, 1)
	est, err := updp.NewEstimator(data, 2.0, updp.WithSeed(5))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if _, err := est.Mean(1.0); err != nil {
		fmt.Println("error:", err)
		return
	}
	if _, err := est.Median(1.0); err != nil {
		fmt.Println("error:", err)
		return
	}
	_, err = est.Variance(0.5) // budget is spent
	fmt.Println("refused:", errors.Is(err, updp.ErrBudgetExhausted))
	fmt.Printf("remaining: %.1f\n", est.Remaining())
	// Output:
	// refused: true
	// remaining: 0.0
}

func ExampleWithDither() {
	// Integer-valued data (large atoms) breaks the continuity assumption;
	// dithering at the quantization step restores it.
	data := make([]float64, 8000)
	for i := range data {
		data[i] = float64(i % 7) // atoms at 0..6
	}
	m, err := updp.Mean(data, 1.0, updp.WithSeed(6), updp.WithDither(1))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("near 3:", math.Abs(m-3) < 1)
	// Output: near 3: true
}
