package updp

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// ErrInvalidTrim reports a trim fraction outside [0, 0.5).
var ErrInvalidTrim = errors.New("updp: trim fraction must be in [0, 0.5)")

// Quantiles releases ε-DP estimates of several quantiles of the same data
// in one call. The probabilities may be in any order; the output is
// parallel to ps and always monotone in p. A single shared privatized range
// is used for all of them, so for k quantiles this is substantially more
// accurate than k independent Quantile calls at ε/k each (the range-finding
// rank cost is paid once instead of k times — see experiment E16).
func Quantiles(data []float64, ps []float64, eps float64, opts ...Option) ([]float64, error) {
	for _, p := range ps {
		if !(p > 0 && p < 1) {
			return nil, fmt.Errorf("%w: got %v", ErrInvalidQuantile, p)
		}
	}
	c, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	return core.EstimateQuantilesProb(c.rng, c.prepare(data), ps, eps, c.beta)
}

// TrimmedMean releases an ε-DP estimate of the trim-fraction trimmed mean:
// the mean after clipping to privately located trim and 1-trim quantiles.
// A robust location estimate for heavy-tailed or contaminated data; needs
// no boundedness assumptions.
func TrimmedMean(data []float64, trim, eps float64, opts ...Option) (float64, error) {
	if !(trim >= 0 && trim < 0.5) {
		return 0, fmt.Errorf("%w: got %v", ErrInvalidTrim, trim)
	}
	c, err := buildConfig(opts)
	if err != nil {
		return 0, err
	}
	return core.TrimmedMean(c.rng, c.prepare(data), trim, eps, c.beta)
}

// MeanCI is a confidence interval around the Mean release. Its coverage
// target is the truncated mean E[clip(X, R̃)] over the privatized clipping
// range R̃ — see the core package's interval documentation for exactly what
// universal coverage is and is not possible under pure DP (the paper's
// §1.3 open problem).
type MeanCI = core.MeanCI

// QuantileCI is a distribution-free confidence interval for a population
// quantile, with universal coverage over every continuous distribution.
type QuantileCI = core.QuantileCI

// MeanInterval releases the Mean estimate together with a
// (1-beta)-confidence interval for the truncated mean, at no extra privacy
// cost beyond the ε of the release itself.
func MeanInterval(data []float64, eps float64, opts ...Option) (MeanCI, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return MeanCI{}, err
	}
	return core.MeanInterval(c.rng, c.prepare(data), eps, c.beta)
}

// QuantileInterval releases an ε-DP interval covering the population
// p-quantile F⁻¹(p) with probability at least 1-beta, for every continuous
// distribution — coverage needs no assumptions at all.
func QuantileInterval(data []float64, p, eps float64, opts ...Option) (QuantileCI, error) {
	if !(p > 0 && p < 1) {
		return QuantileCI{}, fmt.Errorf("%w: got %v", ErrInvalidQuantile, p)
	}
	c, err := buildConfig(opts)
	if err != nil {
		return QuantileCI{}, err
	}
	return core.QuantileInterval(c.rng, c.prepare(data), p, eps, c.beta)
}

// IQRInterval releases an ε-DP interval covering the population IQR with
// probability at least 1-beta, for every continuous distribution.
func IQRInterval(data []float64, eps float64, opts ...Option) (QuantileCI, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return QuantileCI{}, err
	}
	return core.IQRInterval(c.rng, c.prepare(data), eps, c.beta)
}
