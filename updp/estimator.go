package updp

import (
	"repro/internal/dp"
	"repro/internal/xrand"
)

// Estimator answers multiple statistics about one dataset under a total
// privacy budget, enforcing basic composition (Lemma 2.2): each call
// deducts its ε and fails with ErrBudgetExhausted once the budget is
// spent. This is the recommended way to release several statistics about
// the same individuals.
//
//	est, _ := updp.NewEstimator(data, 3.0)   // total ε = 3
//	m, _ := est.Mean(1.0)
//	v, _ := est.Variance(1.0)
//	q, _ := est.IQR(1.0)
//	_, err := est.Mean(0.5)                  // ErrBudgetExhausted
//
// An Estimator is not safe for concurrent use.
type Estimator struct {
	data []float64
	acct *dp.Accountant
	beta float64
	rng  *xrand.RNG
}

// NewEstimator wraps data with a total ε budget. Options set the utility
// failure probability and the RNG seed, as for the package-level functions.
func NewEstimator(data []float64, totalEps float64, opts ...Option) (*Estimator, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	acct, err := dp.NewAccountant(totalEps)
	if err != nil {
		return nil, err
	}
	cp := append([]float64(nil), data...)
	return &Estimator{data: cp, acct: acct, beta: c.beta, rng: c.rng}, nil
}

// Remaining reports the unspent budget.
func (e *Estimator) Remaining() float64 { return e.acct.Remaining() }

// spendAndRun deducts eps and, on success, runs the release.
func (e *Estimator) spendAndRun(eps float64, f func() (float64, error)) (float64, error) {
	if err := e.acct.Spend(eps); err != nil {
		return 0, err
	}
	return f()
}

// Mean releases the mean with budget eps (see package-level Mean).
func (e *Estimator) Mean(eps float64) (float64, error) {
	return e.spendAndRun(eps, func() (float64, error) {
		return Mean(e.data, eps, WithBeta(e.beta), withRNG(e.rng))
	})
}

// Variance releases the variance with budget eps.
func (e *Estimator) Variance(eps float64) (float64, error) {
	return e.spendAndRun(eps, func() (float64, error) {
		return Variance(e.data, eps, WithBeta(e.beta), withRNG(e.rng))
	})
}

// StdDev releases the standard deviation with budget eps.
func (e *Estimator) StdDev(eps float64) (float64, error) {
	return e.spendAndRun(eps, func() (float64, error) {
		return StdDev(e.data, eps, WithBeta(e.beta), withRNG(e.rng))
	})
}

// IQR releases the interquartile range with budget eps.
func (e *Estimator) IQR(eps float64) (float64, error) {
	return e.spendAndRun(eps, func() (float64, error) {
		return IQR(e.data, eps, WithBeta(e.beta), withRNG(e.rng))
	})
}

// Quantile releases the p-quantile with budget eps.
func (e *Estimator) Quantile(p, eps float64) (float64, error) {
	return e.spendAndRun(eps, func() (float64, error) {
		return Quantile(e.data, p, eps, WithBeta(e.beta), withRNG(e.rng))
	})
}

// Median releases the median with budget eps.
func (e *Estimator) Median(eps float64) (float64, error) {
	return e.Quantile(0.5, eps)
}

// withRNG is the internal option that shares the Estimator's stream.
func withRNG(rng *xrand.RNG) Option {
	return func(c *config) { c.rng = rng }
}

// Quantiles releases several quantiles in one budgeted call: far better
// than separate Quantile calls at split budgets (the shared-range release,
// see package-level Quantiles).
func (e *Estimator) Quantiles(ps []float64, eps float64) ([]float64, error) {
	if err := e.acct.Spend(eps); err != nil {
		return nil, err
	}
	return Quantiles(e.data, ps, eps, WithBeta(e.beta), withRNG(e.rng))
}

// TrimmedMean releases the trim-fraction trimmed mean with budget eps.
func (e *Estimator) TrimmedMean(trim, eps float64) (float64, error) {
	return e.spendAndRun(eps, func() (float64, error) {
		return TrimmedMean(e.data, trim, eps, WithBeta(e.beta), withRNG(e.rng))
	})
}

// MeanInterval releases the mean with a confidence interval for the
// truncated mean, spending eps (see package-level MeanInterval).
func (e *Estimator) MeanInterval(eps float64) (MeanCI, error) {
	if err := e.acct.Spend(eps); err != nil {
		return MeanCI{}, err
	}
	return MeanInterval(e.data, eps, WithBeta(e.beta), withRNG(e.rng))
}

// QuantileInterval releases a distribution-free confidence interval for
// the population p-quantile, spending eps.
func (e *Estimator) QuantileInterval(p, eps float64) (QuantileCI, error) {
	if err := e.acct.Spend(eps); err != nil {
		return QuantileCI{}, err
	}
	return QuantileInterval(e.data, p, eps, WithBeta(e.beta), withRNG(e.rng))
}

// IQRInterval releases a distribution-free confidence interval for the
// population IQR, spending eps.
func (e *Estimator) IQRInterval(eps float64) (QuantileCI, error) {
	if err := e.acct.Spend(eps); err != nil {
		return QuantileCI{}, err
	}
	return IQRInterval(e.data, eps, WithBeta(e.beta), withRNG(e.rng))
}
