package updp

import (
	"repro/internal/dp"
	"repro/internal/xrand"
)

// Estimator answers multiple statistics about one dataset under a total
// privacy budget enforced by a composition backend (a dp.Ledger): each
// call names its ε, the ledger prices and atomically deducts it, and the
// call fails with ErrBudgetExhausted once the budget is spent. The default
// backend is pure-ε basic composition (Lemma 2.2); WithLedger swaps in
// zCDP accounting (many small releases become quadratically cheaper) or a
// windowed, renewable budget. This is the recommended way to release
// several statistics about the same individuals.
//
//	est, _ := updp.NewEstimator(data, 3.0)   // total ε = 3
//	m, _ := est.Mean(1.0)
//	v, _ := est.Variance(1.0)
//	q, _ := est.IQR(1.0)
//	_, err := est.Mean(0.5)                  // ErrBudgetExhausted
//
//	led, _ := dp.NewZCDPLedger(3.0, 1e-6)    // same nominal ε, zCDP backend
//	est, _ = updp.NewEstimator(data, 0, updp.WithLedger(led))
//
// An Estimator is not safe for concurrent use, though the ledger itself
// is; sharing one ledger across goroutine-local Estimators is supported.
type Estimator struct {
	data []float64
	led  dp.Ledger
	beta float64
	rng  *xrand.RNG
}

// NewEstimator wraps data with a total ε budget under basic composition.
// Options set the utility failure probability and the RNG seed, as for the
// package-level functions; WithLedger substitutes a different composition
// backend, in which case totalEps is ignored (the ledger carries its own
// budget).
func NewEstimator(data []float64, totalEps float64, opts ...Option) (*Estimator, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	led := c.ledger
	if led == nil {
		led, err = dp.NewBasicLedger(totalEps)
		if err != nil {
			return nil, err
		}
	}
	cp := append([]float64(nil), data...)
	return &Estimator{data: cp, led: led, beta: c.beta, rng: c.rng}, nil
}

// Remaining reports the unspent budget in the ledger's native unit (ε for
// the default backend, ρ for a zCDP ledger — see Ledger.Unit).
func (e *Estimator) Remaining() float64 { return e.led.Remaining() }

// Ledger exposes the estimator's composition backend (native-unit
// inspection, sharing with other release paths).
func (e *Estimator) Ledger() dp.Ledger { return e.led }

// spendAndRun deducts eps through the ledger and, on success, runs the
// release. Budget errors come from the backend and carry its native units.
func (e *Estimator) spendAndRun(eps float64, f func() (float64, error)) (float64, error) {
	if err := e.led.Spend(dp.EpsCost(eps)); err != nil {
		return 0, err
	}
	return f()
}

// Mean releases the mean with budget eps (see package-level Mean).
func (e *Estimator) Mean(eps float64) (float64, error) {
	return e.spendAndRun(eps, func() (float64, error) {
		return Mean(e.data, eps, WithBeta(e.beta), withRNG(e.rng))
	})
}

// Variance releases the variance with budget eps.
func (e *Estimator) Variance(eps float64) (float64, error) {
	return e.spendAndRun(eps, func() (float64, error) {
		return Variance(e.data, eps, WithBeta(e.beta), withRNG(e.rng))
	})
}

// StdDev releases the standard deviation with budget eps.
func (e *Estimator) StdDev(eps float64) (float64, error) {
	return e.spendAndRun(eps, func() (float64, error) {
		return StdDev(e.data, eps, WithBeta(e.beta), withRNG(e.rng))
	})
}

// IQR releases the interquartile range with budget eps.
func (e *Estimator) IQR(eps float64) (float64, error) {
	return e.spendAndRun(eps, func() (float64, error) {
		return IQR(e.data, eps, WithBeta(e.beta), withRNG(e.rng))
	})
}

// Quantile releases the p-quantile with budget eps.
func (e *Estimator) Quantile(p, eps float64) (float64, error) {
	return e.spendAndRun(eps, func() (float64, error) {
		return Quantile(e.data, p, eps, WithBeta(e.beta), withRNG(e.rng))
	})
}

// Median releases the median with budget eps.
func (e *Estimator) Median(eps float64) (float64, error) {
	return e.Quantile(0.5, eps)
}

// withRNG is the internal option that shares the Estimator's stream.
func withRNG(rng *xrand.RNG) Option {
	return func(c *config) { c.rng = rng }
}

// Quantiles releases several quantiles in one budgeted call: far better
// than separate Quantile calls at split budgets (the shared-range release,
// see package-level Quantiles).
func (e *Estimator) Quantiles(ps []float64, eps float64) ([]float64, error) {
	if err := e.led.Spend(dp.EpsCost(eps)); err != nil {
		return nil, err
	}
	return Quantiles(e.data, ps, eps, WithBeta(e.beta), withRNG(e.rng))
}

// TrimmedMean releases the trim-fraction trimmed mean with budget eps.
func (e *Estimator) TrimmedMean(trim, eps float64) (float64, error) {
	return e.spendAndRun(eps, func() (float64, error) {
		return TrimmedMean(e.data, trim, eps, WithBeta(e.beta), withRNG(e.rng))
	})
}

// MeanInterval releases the mean with a confidence interval for the
// truncated mean, spending eps (see package-level MeanInterval).
func (e *Estimator) MeanInterval(eps float64) (MeanCI, error) {
	if err := e.led.Spend(dp.EpsCost(eps)); err != nil {
		return MeanCI{}, err
	}
	return MeanInterval(e.data, eps, WithBeta(e.beta), withRNG(e.rng))
}

// QuantileInterval releases a distribution-free confidence interval for
// the population p-quantile, spending eps.
func (e *Estimator) QuantileInterval(p, eps float64) (QuantileCI, error) {
	if err := e.led.Spend(dp.EpsCost(eps)); err != nil {
		return QuantileCI{}, err
	}
	return QuantileInterval(e.data, p, eps, WithBeta(e.beta), withRNG(e.rng))
}

// IQRInterval releases a distribution-free confidence interval for the
// population IQR, spending eps.
func (e *Estimator) IQRInterval(eps float64) (QuantileCI, error) {
	if err := e.led.Spend(dp.EpsCost(eps)); err != nil {
		return QuantileCI{}, err
	}
	return IQRInterval(e.data, eps, WithBeta(e.beta), withRNG(e.rng))
}
