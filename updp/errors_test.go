package updp

import (
	"errors"
	"math"
	"testing"
)

// Table-driven validation tests: every public release must reject a bad
// epsilon, a bad beta option, and an undersized sample with the documented
// typed errors, regardless of which estimator it wraps.

func TestAllReleasesRejectBadEpsilon(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ints := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	calls := map[string]func(eps float64) error{
		"Mean":     func(e float64) error { _, err := Mean(data, e); return err },
		"Variance": func(e float64) error { _, err := Variance(data, e); return err },
		"StdDev":   func(e float64) error { _, err := StdDev(data, e); return err },
		"IQR":      func(e float64) error { _, err := IQR(data, e); return err },
		"Quantile": func(e float64) error { _, err := Quantile(data, 0.5, e); return err },
		"Median":   func(e float64) error { _, err := Median(data, e); return err },
		"Quantiles": func(e float64) error {
			_, err := Quantiles(data, []float64{0.5}, e)
			return err
		},
		"TrimmedMean": func(e float64) error { _, err := TrimmedMean(data, 0.1, e); return err },
		"MeanInterval": func(e float64) error {
			_, err := MeanInterval(data, e)
			return err
		},
		"QuantileInterval": func(e float64) error {
			_, err := QuantileInterval(data, 0.5, e)
			return err
		},
		"IQRInterval":       func(e float64) error { _, err := IQRInterval(data, e); return err },
		"EmpiricalMean":     func(e float64) error { _, err := EmpiricalMean(ints, e); return err },
		"EmpiricalQuantile": func(e float64) error { _, err := EmpiricalQuantile(ints, 4, e); return err },
		"PrivateRange":      func(e float64) error { _, _, err := PrivateRange(ints, e); return err },
		"PrivateRadius":     func(e float64) error { _, err := PrivateRadius(ints, e); return err },
		"MeanVector": func(e float64) error {
			_, err := MeanVector([][]float64{{1}, {2}, {3}, {4}, {5}}, e)
			return err
		},
		"VarianceDiagonal": func(e float64) error {
			_, err := VarianceDiagonal([][]float64{{1}, {2}, {3}, {4}, {5}}, e)
			return err
		},
		"IQRBracket": func(e float64) error { _, err := IQRBracket(data, e); return err },
	}
	for name, call := range calls {
		for _, eps := range []float64{0, -1, math.NaN(), math.Inf(1)} {
			if err := call(eps); !errors.Is(err, ErrInvalidEpsilon) {
				t.Errorf("%s(eps=%v): want ErrInvalidEpsilon, got %v", name, eps, err)
			}
		}
	}
}

func TestAllReleasesRejectBadBeta(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	calls := map[string]func(o Option) error{
		"Mean":        func(o Option) error { _, err := Mean(data, 1, o); return err },
		"Variance":    func(o Option) error { _, err := Variance(data, 1, o); return err },
		"StdDev":      func(o Option) error { _, err := StdDev(data, 1, o); return err },
		"IQR":         func(o Option) error { _, err := IQR(data, 1, o); return err },
		"Median":      func(o Option) error { _, err := Median(data, 1, o); return err },
		"TrimmedMean": func(o Option) error { _, err := TrimmedMean(data, 0.1, 1, o); return err },
		"IQRInterval": func(o Option) error { _, err := IQRInterval(data, 1, o); return err },
	}
	for name, call := range calls {
		for _, beta := range []float64{0, 1, -0.5, 2, math.NaN()} {
			if err := call(WithBeta(beta)); !errors.Is(err, ErrInvalidBeta) {
				t.Errorf("%s(beta=%v): want ErrInvalidBeta, got %v", name, beta, err)
			}
		}
	}
}

func TestAllReleasesRejectTinySamples(t *testing.T) {
	tiny := []float64{1, 2}
	calls := map[string]func() error{
		"Mean":         func() error { _, err := Mean(tiny, 1); return err },
		"Variance":     func() error { _, err := Variance(tiny, 1); return err },
		"StdDev":       func() error { _, err := StdDev(tiny, 1); return err },
		"IQR":          func() error { _, err := IQR(tiny, 1); return err },
		"TrimmedMean":  func() error { _, err := TrimmedMean(tiny, 0.1, 1); return err },
		"MeanInterval": func() error { _, err := MeanInterval(tiny, 1); return err },
		"IQRBracket":   func() error { _, err := IQRBracket(tiny, 1); return err },
	}
	for name, call := range calls {
		if err := call(); !errors.Is(err, ErrTooFewSamples) {
			t.Errorf("%s(n=2): want ErrTooFewSamples, got %v", name, err)
		}
	}
}

func TestStdDevNonNegativeProjection(t *testing.T) {
	// With a tiny budget the variance release can come out negative; the
	// standard deviation must still be finite and non-negative.
	data := make([]float64, 200)
	for i := range data {
		data[i] = float64(i) * 0.01
	}
	for seed := uint64(1); seed <= 20; seed++ {
		s, err := StdDev(data, 0.05, WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		if s < 0 || math.IsNaN(s) {
			t.Fatalf("seed %d: stddev %v", seed, s)
		}
	}
}
