package updp

import (
	"errors"
	"math"
	"testing"

	"repro/internal/xrand"
)

func gaussianData(seed uint64, n int, mu, sigma float64) []float64 {
	rng := xrand.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = mu + sigma*rng.Gaussian()
	}
	return out
}

func TestMeanBasic(t *testing.T) {
	data := gaussianData(1, 20000, 50, 2)
	m, err := Mean(data, 1.0, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-50) > 1 {
		t.Errorf("Mean = %v, want ~50", m)
	}
}

func TestVarianceBasic(t *testing.T) {
	data := gaussianData(2, 20000, -10, 3)
	v, err := Variance(data, 1.0, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-9) > 3 {
		t.Errorf("Variance = %v, want ~9", v)
	}
}

func TestStdDevNonNegative(t *testing.T) {
	data := gaussianData(3, 5000, 0, 1)
	for seed := uint64(0); seed < 10; seed++ {
		s, err := StdDev(data, 0.5, WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		if s < 0 || math.IsNaN(s) {
			t.Errorf("StdDev = %v", s)
		}
	}
}

func TestIQRBasic(t *testing.T) {
	data := gaussianData(4, 20000, 0, 1)
	q, err := IQR(data, 1.0, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q-1.349) > 0.3 {
		t.Errorf("IQR = %v, want ~1.349", q)
	}
}

func TestQuantileAndMedian(t *testing.T) {
	data := gaussianData(5, 20000, 100, 1)
	med, err := Median(data, 1.0, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(med-100) > 0.5 {
		t.Errorf("Median = %v", med)
	}
	p90, err := Quantile(data, 0.9, 1.0, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p90-101.28) > 0.5 {
		t.Errorf("p90 = %v, want ~101.28", p90)
	}
	if _, err := Quantile(data, 0, 1.0); !errors.Is(err, ErrInvalidQuantile) {
		t.Error("p=0 should fail")
	}
	if _, err := Quantile(data, 1.2, 1.0); !errors.Is(err, ErrInvalidQuantile) {
		t.Error("p>1 should fail")
	}
}

func TestQuantileExtremeRankClamped(t *testing.T) {
	// Extreme p on small n must clamp the target rank into [1, n] (the
	// EstimateQuantilesProb behavior) instead of handing the core an
	// off-the-data rank. All of these must release a value near the data.
	data := []float64{1, 2, 3, 4, 5}
	for _, p := range []float64{1e-12, 1e-300, 0.001, 0.999, 1 - 1e-16} {
		q, err := Quantile(data, p, 1.0, WithSeed(3))
		if err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		if q < -100 || q > 100 {
			t.Errorf("p=%v: release %v is wildly off the data", p, q)
		}
	}
	// Empty data still fails cleanly with the too-few-samples error.
	if _, err := Quantile(nil, 0.5, 1.0); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("empty data: got %v, want ErrTooFewSamples", err)
	}
}

func TestSeedDeterminism(t *testing.T) {
	data := gaussianData(6, 5000, 0, 1)
	a, err := Mean(data, 1.0, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mean(data, 1.0, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same seed should reproduce")
	}
	c, err := Mean(data, 1.0, WithSeed(43))
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds should differ")
	}
}

func TestFreshRandomnessByDefault(t *testing.T) {
	data := gaussianData(7, 5000, 0, 1)
	a, err := Mean(data, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mean(data, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("default releases must use fresh randomness")
	}
}

func TestOptionValidation(t *testing.T) {
	data := gaussianData(8, 100, 0, 1)
	if _, err := Mean(data, 1.0, WithBeta(0)); !errors.Is(err, ErrInvalidBeta) {
		t.Error("beta = 0")
	}
	if _, err := Mean(data, 0); !errors.Is(err, ErrInvalidEpsilon) {
		t.Error("eps = 0")
	}
	if _, err := Mean([]float64{1, 2, 3}, 1.0); !errors.Is(err, ErrTooFewSamples) {
		t.Error("too few samples")
	}
}

func TestEmpiricalAPIs(t *testing.T) {
	rng := xrand.New(9)
	data := make([]int64, 5000)
	for i := range data {
		data[i] = 1_000_000 + rng.Int64Range(-100, 100)
	}
	m, err := EmpiricalMean(data, 1.0, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-1_000_000) > 50 {
		t.Errorf("EmpiricalMean = %v", m)
	}
	q, err := EmpiricalQuantile(data, 2500, 1.0, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if q < 999_800 || q > 1_000_200 {
		t.Errorf("EmpiricalQuantile = %v", q)
	}
	lo, hi, err := PrivateRange(data, 1.0, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if lo > 999_900 || hi < 1_000_100 || hi-lo > 4*220 {
		t.Errorf("PrivateRange = [%v, %v]", lo, hi)
	}
	r, err := PrivateRadius(data, 1.0, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if r < 1_000_000 || r > 2*1_000_100 {
		t.Errorf("PrivateRadius = %v", r)
	}
}

func TestEstimatorBudget(t *testing.T) {
	data := gaussianData(10, 10000, 5, 1)
	est, err := NewEstimator(data, 2.0, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Mean(1.0); err != nil {
		t.Fatal(err)
	}
	if _, err := est.Variance(0.5); err != nil {
		t.Fatal(err)
	}
	if r := est.Remaining(); math.Abs(r-0.5) > 1e-9 {
		t.Errorf("remaining = %v", r)
	}
	if _, err := est.IQR(1.0); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("overdraw should fail, got %v", err)
	}
	// The failed call must not have spent anything.
	if _, err := est.IQR(0.5); err != nil {
		t.Errorf("exact-fit after failed overdraw should pass: %v", err)
	}
}

func TestEstimatorAllStats(t *testing.T) {
	data := gaussianData(12, 20000, 0, 2)
	est, err := NewEstimator(data, 10, WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	if m, err := est.Mean(2); err != nil || math.Abs(m) > 0.5 {
		t.Errorf("mean %v err %v", m, err)
	}
	if v, err := est.Variance(2); err != nil || math.Abs(v-4) > 2 {
		t.Errorf("var %v err %v", v, err)
	}
	if s, err := est.StdDev(2); err != nil || math.Abs(s-2) > 0.7 {
		t.Errorf("std %v err %v", s, err)
	}
	if q, err := est.Median(2); err != nil || math.Abs(q) > 0.5 {
		t.Errorf("median %v err %v", q, err)
	}
	if q, err := est.Quantile(0.75, 2); err != nil || math.Abs(q-1.349) > 0.6 {
		t.Errorf("p75 %v err %v", q, err)
	}
}

func TestEstimatorCopiesData(t *testing.T) {
	data := gaussianData(14, 5000, 0, 1)
	est, err := NewEstimator(data, 5, WithSeed(15))
	if err != nil {
		t.Fatal(err)
	}
	a, err := est.Mean(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		data[i] = 1e9 // caller mutates after construction
	}
	b, err := est.Mean(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b) > math.Abs(a)+5 {
		t.Error("estimator must snapshot the data at construction")
	}
}

func TestEstimatorBadBudget(t *testing.T) {
	if _, err := NewEstimator([]float64{1, 2, 3, 4}, 0); err == nil {
		t.Error("zero budget should fail")
	}
}
