package updp

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/dp"
)

// Budget exhaustion must surface as ErrBudgetExhausted via errors.Is on
// every composition backend, with the error message and Remaining in the
// backend's native unit.

func TestEstimatorBudgetErrorsBasicBackend(t *testing.T) {
	data := make([]float64, 64)
	for i := range data {
		data[i] = float64(i)
	}
	est, err := NewEstimator(data, 1.0, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if est.Ledger().Unit() != dp.UnitEps {
		t.Fatalf("default backend unit = %v, want eps", est.Ledger().Unit())
	}
	if _, err := est.Mean(0.6); err != nil {
		t.Fatal(err)
	}
	if got := est.Remaining(); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("Remaining() = %v, want 0.4 (eps units)", got)
	}
	_, err = est.Median(0.6)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
	if !strings.Contains(err.Error(), "spent") || !strings.Contains(err.Error(), "total") {
		t.Errorf("budget error lacks ledger detail: %q", err.Error())
	}
}

func TestEstimatorBudgetErrorsZCDPBackend(t *testing.T) {
	data := make([]float64, 64)
	for i := range data {
		data[i] = float64(i)
	}
	led, err := dp.NewZCDPLedger(0.1, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// totalEps is ignored when a ledger is supplied — even an (otherwise
	// invalid) zero.
	est, err := NewEstimator(data, 0, WithLedger(led), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if est.Ledger().Unit() != dp.UnitRho {
		t.Fatalf("backend unit = %v, want rho", est.Ledger().Unit())
	}
	// rho_total = ZCDPRho(0.1, 1e-6) ~ 1.8e-4; each eps=0.01 release costs
	// eps^2/2 = 5e-5, so exactly 3 releases fit.
	var lastErr error
	releases := 0
	for i := 0; i < 10; i++ {
		if _, lastErr = est.Mean(0.01); lastErr != nil {
			break
		}
		releases++
	}
	if releases != 3 {
		t.Errorf("zCDP backend afforded %d releases, want 3", releases)
	}
	if !errors.Is(lastErr, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", lastErr)
	}
	if !strings.Contains(lastErr.Error(), "rho=") {
		t.Errorf("zCDP budget error lacks native units: %q", lastErr.Error())
	}
	// Remaining reports in rho and matches the ledger view exactly.
	if got, want := est.Remaining(), led.Remaining(); got != want {
		t.Errorf("Remaining() = %v, ledger says %v", got, want)
	}
	if got := est.Remaining(); math.Abs(got-(dp.ZCDPRho(0.1, 1e-6)-3*5e-5)) > 1e-12 {
		t.Errorf("Remaining() = %v rho, want total-3*5e-5", got)
	}
}

func TestEstimatorBudgetErrorsRDPBackend(t *testing.T) {
	data := make([]float64, 64)
	for i := range data {
		data[i] = float64(i)
	}
	led, err := dp.NewRDPLedger(0.5, 1e-6, nil)
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewEstimator(data, 0, WithLedger(led), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if est.Ledger().Unit() != dp.UnitRDP {
		t.Fatalf("backend unit = %v, want rdp", est.Ledger().Unit())
	}
	// Spend until exhaustion: RDP composes quadratically like zCDP, so
	// small releases last far beyond the pure count of 0.5/0.005 = 100.
	var lastErr error
	releases := 0
	for i := 0; i < 100000; i++ {
		if _, lastErr = est.Mean(0.005); lastErr != nil {
			break
		}
		releases++
	}
	if releases < 200 {
		t.Errorf("rdp backend afforded %d releases, want >= 2x the pure count of 100", releases)
	}
	if !errors.Is(lastErr, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", lastErr)
	}
	if !strings.Contains(lastErr.Error(), "RDP") {
		t.Errorf("rdp budget error lacks native accounting: %q", lastErr.Error())
	}
	// Remaining reports the converted (ε, δ) view and matches the ledger.
	if got, want := est.Remaining(), led.Remaining(); got != want {
		t.Errorf("Remaining() = %v, ledger says %v", got, want)
	}
}

// A shared ledger lets two Estimators draw from one budget.
func TestEstimatorsShareLedger(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	led, err := dp.NewBasicLedger(1.0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewEstimator(data, 0, WithLedger(led), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEstimator(data, 0, WithLedger(led), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Mean(0.7); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Mean(0.7); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("shared ledger not enforced: %v", err)
	}
}
